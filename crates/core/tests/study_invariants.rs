//! Cross-crate integration tests: invariants of the reproduction study
//! that must hold regardless of exact counts.

use fisec_apps::AppSpec;
use fisec_core::{figure4, run_campaign, tables, CampaignConfig, EncodingScheme};
use fisec_inject::{enumerate_targets, golden_run, run_injection, OutcomeClass};
use fisec_net::ClientStatus;

/// A small but real campaign: ftpd, Client1 + Client2, pass() branches
/// only. Used by several tests below; ~2.5k runs, a few seconds.
fn small_ftpd_campaign() -> fisec_core::CampaignResult {
    let mut app = AppSpec::ftpd();
    app.auth_funcs = vec!["pass"];
    app.clients.truncate(2);
    run_campaign(&app, &CampaignConfig::default())
}

#[test]
fn outcome_counts_partition_the_runs() {
    let r = small_ftpd_campaign();
    for c in &r.clients {
        assert_eq!(
            c.counts.total(),
            r.runs_per_client,
            "client {} counts must cover every run",
            c.client
        );
        // Latencies come only from crashes; BRK can crash after granting,
        // so the latency count may slightly exceed the SD tally.
        assert!(c.crash_latencies.len() >= c.counts.sd);
        assert!(c.crash_latencies.len() <= c.counts.sd + c.counts.brk);
        assert!(c.transient_deviations <= c.crash_latencies.len());
        assert_eq!(c.records.len(), r.runs_per_client);
    }
}

#[test]
fn breakins_only_for_denied_clients() {
    let r = small_ftpd_campaign();
    for c in &r.clients {
        if !c.golden_denied {
            assert_eq!(
                c.counts.brk, 0,
                "client {} is granted in the golden run; BRK is undefined",
                c.client
            );
        }
    }
    // And the attack client does see break-ins in pass().
    assert!(
        r.clients[0].counts.brk > 0,
        "expected je/jne-style break-ins for Client1"
    );
}

#[test]
fn new_encoding_reduces_cond_branch_breakins() {
    let mut app = AppSpec::ftpd();
    app.auth_funcs = vec!["pass"];
    app.clients.truncate(1); // Client1 only
    let base = run_campaign(&app, &CampaignConfig::default());
    let new = run_campaign(
        &app,
        &CampaignConfig {
            scheme: EncodingScheme::NewEncoding,
            ..CampaignConfig::default()
        },
    );
    assert!(
        new.clients[0].counts.brk < base.clients[0].counts.brk,
        "new encoding must reduce break-ins: {} -> {}",
        base.clients[0].counts.brk,
        new.clients[0].counts.brk
    );
    // The reduction comes from the 2BC/6BC2 classes, as the paper found.
    let b = &base.clients[0].brkfsv_by_location;
    let n = &new.clients[0].brkfsv_by_location;
    assert!(
        b.c2bc > n.c2bc,
        "2BC cases must shrink: {} -> {}",
        b.c2bc,
        n.c2bc
    );
}

#[test]
fn activation_is_all_or_nothing_per_instruction() {
    // Either every bit of an instruction activates (the instruction
    // executed) or none does — activation only depends on reaching the
    // address.
    let app = AppSpec::ftpd();
    let spec = &app.clients[0];
    let golden = golden_run(&app.image, spec).unwrap();
    let set = enumerate_targets(&app.image, &["pass"], true);
    use std::collections::HashMap;
    let mut by_addr: HashMap<u32, Vec<bool>> = HashMap::new();
    for t in set.targets.iter().take(160) {
        let r = run_injection(&app.image, spec, &golden, t, EncodingScheme::Baseline).unwrap();
        by_addr.entry(t.addr).or_default().push(r.activated);
    }
    for (addr, acts) in by_addr {
        assert!(
            acts.iter().all(|a| *a == acts[0]),
            "instruction at {addr:#x} has mixed activation"
        );
    }
}

#[test]
fn golden_runs_all_match_expectations() {
    for app in [AppSpec::ftpd(), AppSpec::sshd()] {
        for spec in &app.clients {
            let g = golden_run(&app.image, spec).unwrap();
            assert_eq!(
                g.stop,
                fisec_os::Stop::Exited(0),
                "{} {} golden must exit cleanly",
                app.name,
                spec.name
            );
            let want = if spec.golden_denied {
                ClientStatus::Denied
            } else {
                ClientStatus::Granted
            };
            assert_eq!(g.client, want, "{} {}", app.name, spec.name);
            assert!(
                g.icount > 1_000,
                "{} {} did almost nothing",
                app.name,
                spec.name
            );
        }
    }
}

#[test]
fn specific_jne_flip_reproduces_example1() {
    // The paper's Example 1, pinned: in pass(), the branch guarding
    // `rval` after the strcmp decides grant/deny; flipping its opcode's
    // low bit grants access to the wrong-password client.
    let app = AppSpec::ftpd();
    let spec = &app.clients[0];
    let golden = golden_run(&app.image, spec).unwrap();
    let set = enumerate_targets(&app.image, &["pass"], true);
    let brk_targets: Vec<_> = set
        .targets
        .iter()
        .filter(|t| t.byte_index == 0 && t.bit == 0)
        .filter(|t| {
            let r = run_injection(&app.image, spec, &golden, t, EncodingScheme::Baseline).unwrap();
            r.outcome == OutcomeClass::Breakin
        })
        .collect();
    assert!(
        !brk_targets.is_empty(),
        "bit 0 of some Jcc opcode must break in"
    );
    // Deterministic: re-running the same target reproduces the break-in.
    let t = brk_targets[0];
    for _ in 0..3 {
        let r = run_injection(&app.image, spec, &golden, t, EncodingScheme::Baseline).unwrap();
        assert_eq!(r.outcome, OutcomeClass::Breakin);
    }
    // And the same flip under the new encoding does not break in.
    let r = run_injection(&app.image, spec, &golden, t, EncodingScheme::NewEncoding).unwrap();
    assert_ne!(r.outcome, OutcomeClass::Breakin);
}

#[test]
fn table_renderers_accept_real_results() {
    let r = small_ftpd_campaign();
    let t1 = tables::render_table1(&[&r]);
    assert!(t1.contains("FTPD Client1"));
    assert!(t1.contains("BRK"));
    let t3 = tables::render_table3(&[&r]);
    assert!(t3.contains("2BC"));
    let f4 = figure4::render(&figure4::histogram(&r.clients[0].crash_latencies));
    assert!(f4.contains("samples"));
}

#[test]
fn na_runs_leave_no_traces_of_effect() {
    // A never-executed instruction's corruption must not affect the run.
    let app = AppSpec::ftpd();
    let spec = &app.clients[0]; // Client1 never reaches retr()'s grant path
    let golden = golden_run(&app.image, spec).unwrap();
    let set = enumerate_targets(&app.image, &["retr"], true);
    let mut nas = 0;
    for t in set.targets.iter().take(48) {
        let r = run_injection(&app.image, spec, &golden, t, EncodingScheme::Baseline).unwrap();
        if !r.activated {
            assert_eq!(r.outcome, OutcomeClass::NotActivated);
            assert_eq!(r.client, golden.client);
            nas += 1;
        }
    }
    assert!(nas > 0, "retr() must be unreached for the denied client");
}

#[test]
fn crash_latency_counts_instructions_not_wallclock() {
    // Crash latencies must be small positive integers for immediate
    // crashes and reproducible run to run.
    let r1 = small_ftpd_campaign();
    let r2 = small_ftpd_campaign();
    assert_eq!(r1.clients[0].crash_latencies, r2.clients[0].crash_latencies);
    assert!(r1.clients[0].crash_latencies.iter().all(|l| *l >= 1));
}
