//! The concluding-remarks experiment (§7) at scale: massive random
//! single-bit injection over the whole text segment while the server is
//! under a constant authentication attack. The paper reports roughly
//! one security violation per 3,000 single-bit errors.
//!
//! Unlike the breakpoint campaigns, these errors are *latent*: the bit
//! is corrupted in the loaded image before the connection starts,
//! modelling a memory error that persists until the page is reloaded
//! (§5.4). The execution primitive is [`fisec_inject::LatentRunner`];
//! this module is the campaign tier on top of it, built for 10⁶–10⁷
//! runs:
//!
//! * **Sharded deterministic RNG** — [`draw`] is a counter-based
//!   SplitMix64 stream: run index `i` alone determines its
//!   `(offset, bit)` pair, so any partition of the index space over any
//!   number of worker shards draws exactly the same multiset. Sharded
//!   and unsharded campaigns are bit-identical by construction (and
//!   pinned so by differential tests).
//! * **Streaming aggregation** — runs fold straight into
//!   [`RandomCampaignResult`] tallies plus per-outcome icount
//!   histograms ([`fisec_telemetry::OutcomeHists`]); memory stays flat
//!   no matter how many runs.
//! * **Resumable ledger** — every committed batch appends a
//!   *cumulative* checkpoint ([`fisec_telemetry::RandomBatchEvent`]) to
//!   the telemetry stream. A killed campaign restarts from the last
//!   committed batch ([`read_ledger`] + [`resume_random_streaming`])
//!   and finishes with tallies bit-identical to an uninterrupted run.
//! * **Statistical confidence** — the report carries Wilson and
//!   Clopper-Pearson 95% intervals on the violation rate
//!   ([`crate::stats`]), and [`RandomConfig::target_ci`] keeps sampling
//!   until the Wilson interval is narrower than a requested width.

use crate::campaign::{run_work_queue, ExecutionMode};
use crate::stats::{clopper_pearson95, wilson95, Ci};
use fisec_apps::{AppSpec, ClientSpec};
use fisec_asm::Image;
use fisec_encoding::EncodingScheme;
use fisec_inject::{
    golden_run_opts, EngineOpts, GoldenRun, InjectionRun, LatentError, LatentRunner, OutcomeClass,
};
use fisec_telemetry::{
    metric, MetricsShard, OutcomeHists, RandomBatchEvent, RandomCampaignEvent, RandomEndEvent,
    Telemetry, TraceEvent,
};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::path::Path;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// Draw the `(offset, bit)` pair for run `index` of the stream keyed by
/// `seed`, over a text segment of `text_len` bytes.
///
/// Counter-based (SplitMix64 finalizer evaluated at stream positions
/// `2·index` and `2·index + 1`): random access by index, no sequential
/// state. This is what makes the campaign partition-invariant — a shard
/// executing indices `[a, b)` draws exactly what a single-threaded pass
/// draws over that range.
///
/// # Panics
/// If `text_len` is zero (nothing to corrupt).
pub fn draw(seed: u64, index: u64, text_len: usize) -> (usize, u8) {
    assert!(text_len > 0, "text segment is empty");
    let a = splitmix64_at(seed, 2 * index);
    let b = splitmix64_at(seed, 2 * index + 1);
    // Unbiased range reduction by widening multiply (the fixed-point
    // product of a uniform u64 with the length).
    let offset = ((u128::from(a) * text_len as u128) >> 64) as usize;
    let bit = (b >> 61) as u8;
    (offset, bit)
}

/// The SplitMix64 output function evaluated at absolute stream position
/// `pos` of the stream keyed by `seed`.
fn splitmix64_at(seed: u64, pos: u64) -> u64 {
    let mut z = seed.wrapping_add(pos.wrapping_add(1).wrapping_mul(0x9E37_79B9_7F4A_7C15));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Random-campaign tallies.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct RandomCampaignResult {
    /// Total injected errors.
    pub runs: usize,
    /// Runs indistinguishable from golden.
    pub no_effect: usize,
    /// Crashes.
    pub sd: usize,
    /// Fail-silence violations.
    pub fsv: usize,
    /// Security break-ins.
    pub brk: usize,
}

impl RandomCampaignResult {
    /// Errors per break-in ("one out of N"); `None` when no break-in
    /// occurred.
    pub fn errors_per_breakin(&self) -> Option<f64> {
        if self.brk == 0 {
            None
        } else {
            Some(self.runs as f64 / self.brk as f64)
        }
    }

    fn add(&mut self, outcome: OutcomeClass) {
        self.runs += 1;
        match outcome {
            OutcomeClass::Breakin => self.brk += 1,
            OutcomeClass::SystemDetection => self.sd += 1,
            OutcomeClass::FailSilenceViolation => self.fsv += 1,
            _ => self.no_effect += 1,
        }
    }

    fn merge(&mut self, other: &RandomCampaignResult) {
        self.runs += other.runs;
        self.no_effect += other.no_effect;
        self.sd += other.sd;
        self.fsv += other.fsv;
        self.brk += other.brk;
    }
}

/// Configuration of one streaming random campaign.
#[derive(Debug, Clone, PartialEq)]
pub struct RandomConfig {
    /// Total runs (the cap when [`RandomConfig::target_ci`] is set).
    pub runs: usize,
    /// Master seed of the counter-based draw stream.
    pub seed: u64,
    /// Encoding scheme the flip goes through.
    pub scheme: EncodingScheme,
    /// Execution engine for every session.
    pub mode: ExecutionMode,
    /// Index into the app's client list (the attack pattern).
    pub client: usize,
    /// Worker shards.
    pub threads: usize,
    /// Runs per committed ledger batch.
    pub batch: usize,
    /// Stop early once the Wilson 95% interval on the violation rate is
    /// narrower than this width.
    pub target_ci: Option<f64>,
    /// Execution-engine options threaded into every process.
    pub engine: EngineOpts,
}

impl Default for RandomConfig {
    fn default() -> RandomConfig {
        RandomConfig {
            runs: 3000,
            seed: 2001,
            scheme: EncodingScheme::Baseline,
            mode: ExecutionMode::Snapshot,
            client: 0,
            threads: 1,
            batch: 500,
            target_ci: None,
            engine: EngineOpts::default(),
        }
    }
}

impl RandomConfig {
    fn header(&self, app: &AppSpec, client: &ClientSpec) -> RandomCampaignEvent {
        RandomCampaignEvent {
            app: app.name.to_string(),
            scheme: self.scheme.to_string(),
            mode: self.mode.name().to_string(),
            client: client.name.clone(),
            seed: self.seed,
            runs: self.runs as u64,
            batch: self.batch as u64,
            text_len: app.image.text.len() as u64,
            target_ci: self.target_ci,
        }
    }

    /// Rebuild the configuration a ledger header records, so `--resume`
    /// needs no flag replay. Threads and engine options are
    /// execution-only (they cannot change the outcome) and keep their
    /// caller-chosen values.
    ///
    /// # Errors
    /// A message for an unknown scheme or mode label.
    pub fn from_header(
        header: &RandomCampaignEvent,
        threads: usize,
        engine: EngineOpts,
    ) -> Result<RandomConfig, String> {
        let scheme = [EncodingScheme::Baseline, EncodingScheme::NewEncoding]
            .into_iter()
            .find(|s| s.to_string() == header.scheme)
            .ok_or_else(|| format!("ledger header: unknown scheme label `{}`", header.scheme))?;
        let mode = [ExecutionMode::Snapshot, ExecutionMode::FromScratch]
            .into_iter()
            .find(|m| m.name() == header.mode)
            .ok_or_else(|| format!("ledger header: unknown mode label `{}`", header.mode))?;
        Ok(RandomConfig {
            runs: header.runs as usize,
            seed: header.seed,
            scheme,
            mode,
            client: 0, // resolved by name against the app below
            threads,
            batch: header.batch.max(1) as usize,
            target_ci: header.target_ci,
            engine,
        })
    }
}

/// Everything a finished (or replayed) random campaign reports: the
/// identifying header fields, the folded tallies and the per-outcome
/// icount histograms. [`render_report`] turns it into the CLI report;
/// `fisec stats` rebuilds an identical value from the ledger.
#[derive(Debug, Clone, PartialEq)]
pub struct RandomStats {
    /// Application name.
    pub app: String,
    /// Scheme label.
    pub scheme: String,
    /// Execution engine label.
    pub mode: String,
    /// Attack client name.
    pub client: String,
    /// Master seed.
    pub seed: u64,
    /// Ledger batch granularity.
    pub batch: usize,
    /// Requested Wilson-interval width, when adaptive sampling was on.
    pub target_ci: Option<f64>,
    /// Folded tallies.
    pub result: RandomCampaignResult,
    /// Per-outcome icount histograms.
    pub hists: OutcomeHists,
}

/// Flat JSON shape of a random campaign's headline numbers (tallies +
/// rate + both intervals), for `--json` output and snapshot diffing.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RandomJsonSummary {
    /// Total injected errors.
    pub runs: usize,
    /// Runs indistinguishable from golden.
    pub no_effect: usize,
    /// Crashes.
    pub sd: usize,
    /// Fail-silence violations.
    pub fsv: usize,
    /// Break-ins.
    pub brk: usize,
    /// Point estimate brk/runs.
    pub violation_rate: f64,
    /// Wilson 95% lower bound.
    pub wilson_low: f64,
    /// Wilson 95% upper bound.
    pub wilson_high: f64,
    /// Clopper-Pearson 95% lower bound.
    pub cp_low: f64,
    /// Clopper-Pearson 95% upper bound.
    pub cp_high: f64,
}

impl RandomStats {
    /// The flat `--json` summary: tallies, rate, both 95% intervals.
    pub fn json_summary(&self) -> RandomJsonSummary {
        let w = self.wilson95();
        let cp = self.clopper_pearson95();
        RandomJsonSummary {
            runs: self.result.runs,
            no_effect: self.result.no_effect,
            sd: self.result.sd,
            fsv: self.result.fsv,
            brk: self.result.brk,
            violation_rate: self.violation_rate(),
            wilson_low: w.low,
            wilson_high: w.high,
            cp_low: cp.low,
            cp_high: cp.high,
        }
    }

    /// Point estimate of the violation (break-in) rate.
    pub fn violation_rate(&self) -> f64 {
        if self.result.runs == 0 {
            0.0
        } else {
            self.result.brk as f64 / self.result.runs as f64
        }
    }

    /// Wilson 95% interval on the violation rate.
    pub fn wilson95(&self) -> Ci {
        wilson95(self.result.brk as u64, self.result.runs as u64)
    }

    /// Clopper-Pearson 95% interval on the violation rate.
    pub fn clopper_pearson95(&self) -> Ci {
        clopper_pearson95(self.result.brk as u64, self.result.runs as u64)
    }
}

/// Render the campaign report: tallies, the violation rate with both
/// 95% intervals, and the icount histogram per outcome. Deliberately
/// timing-free so a ledger replay (`fisec stats`) reproduces the live
/// report byte-identically.
pub fn render_report(stats: &RandomStats) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "== random injection: {} [{}] — {} engine ==\n",
        stats.app, stats.scheme, stats.mode
    ));
    out.push_str(&format!(
        "client {}  seed {}  batch {}{}\n",
        stats.client,
        stats.seed,
        stats.batch,
        match stats.target_ci {
            Some(w) => format!("  target-ci {w:.2e}"),
            None => String::new(),
        }
    ));
    let r = &stats.result;
    out.push_str(&format!(
        "runs {}: no-effect {}  SD {}  FSV {}  BRK {}\n",
        r.runs, r.no_effect, r.sd, r.fsv, r.brk
    ));
    out.push_str(&format!(
        "violation rate (BRK): {:.3e}{}\n",
        stats.violation_rate(),
        match r.errors_per_breakin() {
            Some(n) => format!("  (1 in {n:.0})"),
            None => String::new(),
        }
    ));
    let w = stats.wilson95();
    let cp = stats.clopper_pearson95();
    out.push_str(&format!(
        "  Wilson 95%:          [{:.3e}, {:.3e}]  width {:.3e}\n",
        w.low,
        w.high,
        w.width()
    ));
    out.push_str(&format!(
        "  Clopper-Pearson 95%: [{:.3e}, {:.3e}]  width {:.3e}\n",
        cp.low,
        cp.high,
        cp.width()
    ));
    out.push_str("icount by outcome:\n");
    for (label, h) in [
        ("no-effect", &stats.hists.no_effect),
        ("SD", &stats.hists.sd),
        ("FSV", &stats.hists.fsv),
        ("BRK", &stats.hists.brk),
    ] {
        if h.count > 0 {
            let (p50, p95, p99) = h.percentiles();
            out.push_str(&format!(
                "  {label:<10} n={:<9} mean={:<11.1} p50={:<9.1} p95={:<9.1} p99={:<11.1} max={}\n",
                h.count,
                h.mean(),
                p50,
                p95,
                p99,
                h.max
            ));
        }
    }
    out
}

/// The aggregation state a ledger restores: the header that keyed the
/// campaign, the cumulative tallies/histograms of the last committed
/// batch, and how far the run-index stream got.
#[derive(Debug, Clone, PartialEq)]
pub struct LedgerState {
    /// Campaign header as recorded.
    pub header: RandomCampaignEvent,
    /// One past the last committed run index.
    pub committed: u64,
    /// Cumulative tallies at `committed`.
    pub tallies: RandomCampaignResult,
    /// Cumulative per-outcome icount histograms at `committed`.
    pub hists: OutcomeHists,
    /// Whether the ledger carries a campaign trailer (nothing to
    /// resume).
    pub finished: bool,
    /// Byte length of the well-formed JSONL prefix of the file. A
    /// campaign killed mid-write leaves a torn final line past this
    /// point; [`truncate_torn_tail`] chops it before appending resumes.
    pub valid_len: u64,
}

/// Truncate a ledger file to the well-formed prefix [`read_ledger`]
/// validated, so appending resumed checkpoints cannot splice onto a
/// torn final line.
///
/// # Errors
/// A message when the file cannot be opened or truncated.
pub fn truncate_torn_tail(path: impl AsRef<Path>, ledger: &LedgerState) -> Result<(), String> {
    let path = path.as_ref();
    let f = std::fs::OpenOptions::new()
        .write(true)
        .open(path)
        .map_err(|e| format!("open {}: {e}", path.display()))?;
    let len = f
        .metadata()
        .map_err(|e| format!("stat {}: {e}", path.display()))?
        .len();
    if len > ledger.valid_len {
        f.set_len(ledger.valid_len)
            .map_err(|e| format!("truncate {}: {e}", path.display()))?;
    }
    Ok(())
}

/// Read a (possibly truncated) campaign ledger back into its
/// aggregation state. Parsing is deliberately lenient about the tail: a
/// campaign killed mid-write leaves a torn final line, so reading stops
/// at the first malformed line and resumes from the last *parseable*
/// committed batch.
///
/// # Errors
/// A message when the file is unreadable, carries no campaign header,
/// or its first line is already malformed.
pub fn read_ledger(path: impl AsRef<Path>) -> Result<LedgerState, String> {
    let text = std::fs::read_to_string(path.as_ref())
        .map_err(|e| format!("read {}: {e}", path.as_ref().display()))?;
    let mut state: Option<LedgerState> = None;
    let mut valid_len = 0u64;
    let mut pos = 0usize;
    for (i, raw) in text.split_inclusive('\n').enumerate() {
        pos += raw.len();
        // A final line the writer never newline-terminated is a torn
        // tail even when its prefix happens to parse as JSON.
        if !raw.ends_with('\n') {
            break;
        }
        let line = raw.trim();
        if line.is_empty() {
            valid_len = pos as u64;
            continue;
        }
        let ev = match TraceEvent::parse_line(line) {
            Ok(ev) => ev,
            // Torn tail from a killed writer: keep what committed.
            Err(e) if state.is_some() => {
                let _ = e;
                break;
            }
            Err(e) => return Err(format!("ledger line {}: {e}", i + 1)),
        };
        valid_len = pos as u64;
        match ev {
            TraceEvent::RandomCampaign(header) => {
                // A later header supersedes the earlier campaign (the
                // file is append-only; only the last campaign resumes).
                state = Some(LedgerState {
                    header,
                    committed: 0,
                    tallies: RandomCampaignResult::default(),
                    hists: OutcomeHists::default(),
                    finished: false,
                    valid_len: 0,
                });
            }
            TraceEvent::RandomBatch(b) => {
                let Some(st) = state.as_mut() else {
                    return Err(format!("ledger line {}: batch before header", i + 1));
                };
                st.committed = b.end;
                st.tallies = RandomCampaignResult {
                    runs: b.end as usize,
                    no_effect: b.no_effect as usize,
                    sd: b.sd as usize,
                    fsv: b.fsv as usize,
                    brk: b.brk as usize,
                };
                st.hists = b.hists;
            }
            TraceEvent::RandomEnd(_) => {
                if let Some(st) = state.as_mut() {
                    st.finished = true;
                }
            }
            // Targeted-campaign events sharing the stream are not ours.
            TraceEvent::Campaign(_)
            | TraceEvent::Run(_)
            | TraceEvent::CampaignEnd(_)
            | TraceEvent::Span(_)
            | TraceEvent::Profile(_)
            | TraceEvent::Propagation(_)
            | TraceEvent::Cache(_) => {}
        }
    }
    match state {
        Some(mut st) => {
            st.valid_len = valid_len;
            Ok(st)
        }
        None => Err("ledger contains no random-campaign header".to_string()),
    }
}

/// Run a streaming random campaign from index 0.
///
/// # Errors
/// A message for an out-of-range client index, an unloadable image, or
/// an empty text segment.
pub fn run_random_streaming(
    app: &AppSpec,
    cfg: &RandomConfig,
    tel: &Telemetry,
) -> Result<RandomStats, String> {
    run_random_inner(app, cfg, tel, None)
}

/// Resume a streaming random campaign from a ledger's last committed
/// batch. The caller re-opens the ledger file in append mode as `tel`'s
/// sink; checkpoints continue where they left off and the final tallies
/// are bit-identical to an uninterrupted run.
///
/// # Errors
/// A message when the ledger does not match `app`/`cfg` (different
/// seed, scheme, runs, batch, client or text length) or the campaign
/// cannot run.
pub fn resume_random_streaming(
    app: &AppSpec,
    cfg: &RandomConfig,
    ledger: &LedgerState,
    tel: &Telemetry,
) -> Result<RandomStats, String> {
    let client = app
        .clients
        .get(cfg.client)
        .ok_or_else(|| format!("client index {} out of range", cfg.client))?;
    let expect = cfg.header(app, client);
    if ledger.header != expect {
        return Err(format!(
            "ledger header does not match this campaign:\n  ledger: {:?}\n  campaign: {expect:?}",
            ledger.header
        ));
    }
    if ledger.committed as usize > cfg.runs {
        return Err(format!(
            "ledger committed {} runs but the campaign only has {}",
            ledger.committed, cfg.runs
        ));
    }
    run_random_inner(app, cfg, tel, Some(ledger))
}

/// Outcome tallies + histograms of one executed batch, keyed for
/// in-order committing.
#[derive(Default)]
struct BatchPartial {
    tallies: RandomCampaignResult,
    hists: OutcomeHists,
}

/// Folds batches in index order, appends cumulative checkpoints to the
/// event stream, and decides the deterministic stop point.
struct Committer<'a> {
    state: Mutex<CommitState>,
    stop: AtomicBool,
    tel: &'a Telemetry,
    target_ci: Option<f64>,
    batch: usize,
    final_batch: usize,
}

struct CommitState {
    /// Next batch index to fold.
    next: usize,
    /// The batch at which the campaign deterministically stops (target
    /// CI reached); later batches are discarded.
    stop_at: Option<usize>,
    pending: BTreeMap<usize, BatchPartial>,
    tallies: RandomCampaignResult,
    hists: OutcomeHists,
}

impl Committer<'_> {
    fn commit(&self, idx: usize, partial: BatchPartial) {
        let mut st = self.state.lock().expect("no worker panicked");
        if st.stop_at.is_some_and(|s| idx > s) {
            return; // raced past the deterministic stop point
        }
        st.pending.insert(idx, partial);
        while let Some(p) = {
            let next = st.next;
            st.pending.remove(&next)
        } {
            st.tallies.merge(&p.tallies);
            st.hists.merge(&p.hists);
            self.tel.progress.add(
                [
                    0,
                    p.tallies.no_effect as u64,
                    p.tallies.sd as u64,
                    p.tallies.fsv as u64,
                    p.tallies.brk as u64,
                ],
                1,
            );
            if self.tel.events_enabled() {
                let end = st.tallies.runs as u64;
                self.tel
                    .sink
                    .emit(&TraceEvent::RandomBatch(Box::new(RandomBatchEvent {
                        start: end - p.tallies.runs as u64,
                        end,
                        no_effect: st.tallies.no_effect as u64,
                        sd: st.tallies.sd as u64,
                        fsv: st.tallies.fsv as u64,
                        brk: st.tallies.brk as u64,
                        hists: st.hists.clone(),
                    })));
                self.tel.sink.flush();
            }
            let reached_target = self.target_ci.is_some_and(|w| {
                wilson95(st.tallies.brk as u64, st.tallies.runs as u64).width() <= w
            });
            if reached_target || st.next + 1 == self.final_batch {
                st.stop_at = Some(st.next);
                self.stop.store(true, Ordering::Relaxed);
                st.next += 1;
                break;
            }
            st.next += 1;
        }
        // The first committed run index of batch `b` is `b * batch`
        // (only the final batch is short), so cumulative `runs` always
        // equals the committed index frontier.
        debug_assert!(st.tallies.runs <= st.next * self.batch);
    }

    fn into_state(self) -> (RandomCampaignResult, OutcomeHists) {
        let st = self.state.into_inner().expect("no worker panicked");
        (st.tallies, st.hists)
    }
}

fn run_random_inner(
    app: &AppSpec,
    cfg: &RandomConfig,
    tel: &Telemetry,
    resume: Option<&LedgerState>,
) -> Result<RandomStats, String> {
    let client = app.clients.get(cfg.client).ok_or_else(|| {
        format!(
            "client index {} out of range for {} (valid: 0..={})",
            cfg.client,
            app.name,
            app.clients.len() - 1
        )
    })?;
    let text_len = app.image.text.len();
    if text_len == 0 {
        return Err("text segment is empty".to_string());
    }
    let batch = cfg.batch.max(1);
    let start = Instant::now();

    let stats_of = |tallies: RandomCampaignResult, hists: OutcomeHists| RandomStats {
        app: app.name.to_string(),
        scheme: cfg.scheme.to_string(),
        mode: cfg.mode.name().to_string(),
        client: client.name.clone(),
        seed: cfg.seed,
        batch,
        target_ci: cfg.target_ci,
        result: tallies,
        hists,
    };

    let (first_batch, init_tallies, init_hists) = match resume {
        Some(l) => {
            if l.finished || l.committed as usize >= cfg.runs {
                return Ok(stats_of(l.tallies, l.hists.clone()));
            }
            debug_assert_eq!(
                l.committed % batch as u64,
                0,
                "interior checkpoints land on batch boundaries"
            );
            (l.committed as usize / batch, l.tallies, l.hists.clone())
        }
        None => {
            if tel.events_enabled() {
                tel.sink
                    .emit(&TraceEvent::RandomCampaign(cfg.header(app, client)));
                tel.sink.flush();
            }
            (0, RandomCampaignResult::default(), OutcomeHists::default())
        }
    };
    // A resumed campaign may already satisfy the target width.
    if cfg.target_ci.is_some_and(|w| {
        init_tallies.runs > 0
            && wilson95(init_tallies.brk as u64, init_tallies.runs as u64).width() <= w
    }) {
        return Ok(stats_of(init_tallies, init_hists));
    }

    let golden = golden_run_opts(&app.image, client, cfg.engine)
        .map_err(|e| format!("golden run: {e:?}"))?;
    let total_batches = cfg.runs.div_ceil(batch);
    let committer = Committer {
        state: Mutex::new(CommitState {
            next: first_batch,
            stop_at: None,
            pending: BTreeMap::new(),
            tallies: init_tallies,
            hists: init_hists,
        }),
        stop: AtomicBool::new(false),
        tel,
        target_ci: cfg.target_ci,
        batch,
        final_batch: total_batches,
    };

    // Resumed runs count toward completion and the tally but not the
    // rate/ETA estimate (which only fresh work should drive).
    tel.progress.begin_resumed(
        &format!("{} random [{}]", app.name, cfg.scheme),
        cfg.runs as u64,
        [
            0,
            init_tallies.no_effect as u64,
            init_tallies.sd as u64,
            init_tallies.fsv as u64,
            init_tallies.brk as u64,
        ],
        first_batch as u64,
    );

    let threads = cfg.threads.max(1).min(total_batches - first_batch);
    let worker_err: Mutex<Option<String>> = Mutex::new(None);
    run_work_queue(threads, total_batches - first_batch, |w, pull| {
        let mut shard = MetricsShard::new();
        let mut runner = match cfg.mode {
            ExecutionMode::Snapshot => {
                match LatentRunner::snapshot(&app.image, client, &golden, cfg.engine) {
                    Ok(r) => {
                        if tel.enabled() {
                            shard.inc(metric::FRESH_BOOTS, 1);
                        }
                        r
                    }
                    Err(e) => {
                        *worker_err.lock().expect("no worker panicked") =
                            Some(format!("worker {w}: image load: {e:?}"));
                        return;
                    }
                }
            }
            ExecutionMode::FromScratch => {
                LatentRunner::from_scratch(&app.image, client, &golden, cfg.engine)
            }
        };
        while let Some(i) = pull() {
            if committer.stop.load(Ordering::Relaxed) {
                break;
            }
            let b = first_batch + i;
            let lo = b * batch;
            let hi = ((b + 1) * batch).min(cfg.runs);
            let mut partial = BatchPartial::default();
            for idx in lo..hi {
                let (offset, bit) = draw(cfg.seed, idx as u64, text_len);
                let err = LatentError {
                    offset,
                    corrupted: corrupt_byte(&app.image, offset, bit, cfg.scheme),
                };
                let (run, meta) = match runner.run(&golden, err) {
                    Ok(r) => r,
                    Err(e) => {
                        *worker_err.lock().expect("no worker panicked") =
                            Some(format!("run {idx}: {e}"));
                        return;
                    }
                };
                partial.tallies.add(run.outcome);
                let hist = match run.outcome {
                    OutcomeClass::Breakin => &mut partial.hists.brk,
                    OutcomeClass::SystemDetection => &mut partial.hists.sd,
                    OutcomeClass::FailSilenceViolation => &mut partial.hists.fsv,
                    _ => &mut partial.hists.no_effect,
                };
                hist.record(meta.icount);
                if tel.enabled() {
                    shard.inc(metric::RUNS, 1);
                    shard.inc(metric::FRESH_BOOTS, runner.boots_per_run());
                    shard.observe(metric::REPLAY_MICROS, meta.run_micros);
                    shard.observe(metric::ICOUNT, meta.icount);
                }
            }
            committer.commit(b, partial);
        }
        if tel.enabled() {
            tel.metrics.absorb(&shard);
        }
    });
    tel.progress.finish();
    if let Some(e) = worker_err.into_inner().expect("no worker panicked") {
        return Err(e);
    }

    let (tallies, hists) = committer.into_state();
    let stats = stats_of(tallies, hists);
    if tel.events_enabled() {
        let w = stats.wilson95();
        let cp = stats.clopper_pearson95();
        tel.sink.emit(&TraceEvent::RandomEnd(RandomEndEvent {
            runs: stats.result.runs as u64,
            no_effect: stats.result.no_effect as u64,
            sd: stats.result.sd as u64,
            fsv: stats.result.fsv as u64,
            brk: stats.result.brk as u64,
            wall_micros: u64::try_from(start.elapsed().as_micros()).unwrap_or(u64::MAX),
            violation_rate: stats.violation_rate(),
            wilson_low: w.low,
            wilson_high: w.high,
            cp_low: cp.low,
            cp_high: cp.high,
        }));
        tel.sink.flush();
    }
    Ok(stats)
}

/// The corrupted value for flipping `bit` of the text byte at `offset`
/// under `scheme` — a plain XOR for the baseline, the §6.2
/// map→flip→map transform (keyed by the byte's decoded context) for the
/// new encoding.
fn corrupt_byte(image: &Image, offset: usize, bit: u8, scheme: EncodingScheme) -> u8 {
    match scheme {
        EncodingScheme::Baseline => image.text[offset] ^ (1 << bit),
        EncodingScheme::NewEncoding => {
            let ctx = opcode_contexts(image)[offset];
            fisec_encoding::remap_flip(image.text[offset], bit, ctx, scheme)
        }
    }
}

/// Run one session against an image whose text byte `offset` has `bit`
/// flipped. One-shot form of [`fisec_inject::LatentRunner`] for simple
/// callers (benches, exploratory tests).
///
/// # Errors
/// A message when `offset` is outside the text segment or `bit > 7`.
pub fn run_with_latent_error(
    image: &Image,
    spec: &ClientSpec,
    golden: &GoldenRun,
    offset: usize,
    bit: u8,
) -> Result<InjectionRun, String> {
    if bit > 7 {
        return Err(format!("bit {bit} out of range (valid: 0..=7)"));
    }
    if offset >= image.text.len() {
        return Err(format!(
            "offset {} out of range for text segment of {} bytes",
            offset,
            image.text.len()
        ));
    }
    let mut runner = LatentRunner::from_scratch(image, spec, golden, EngineOpts::default());
    let err = LatentError {
        offset,
        corrupted: image.text[offset] ^ (1 << bit),
    };
    runner.run(golden, err).map(|(run, _)| run)
}

/// Run `runs` random single-bit text-segment errors under the attack
/// client (the app's first client pattern), seeded for reproducibility.
pub fn run_random_campaign(app: &AppSpec, runs: usize, seed: u64) -> RandomCampaignResult {
    run_random_campaign_scheme(app, runs, seed, EncodingScheme::Baseline)
}

/// [`run_random_campaign`] parameterized by encoding scheme. Under
/// [`EncodingScheme::NewEncoding`] each chosen byte goes through the
/// §6.2 map→flip→map transform using its decoded byte context.
pub fn run_random_campaign_scheme(
    app: &AppSpec,
    runs: usize,
    seed: u64,
    scheme: EncodingScheme,
) -> RandomCampaignResult {
    let cfg = RandomConfig {
        runs,
        seed,
        scheme,
        ..RandomConfig::default()
    };
    run_random_streaming(app, &cfg, &Telemetry::disabled())
        .expect("default config on a bundled app cannot fail")
        .result
}

/// Per-byte §6.2 mapping context, derived by linearly decoding every
/// function body.
fn opcode_contexts(image: &Image) -> Vec<fisec_encoding::ByteCtx> {
    use fisec_encoding::ByteCtx;
    let mut ctx = vec![ByteCtx::Other; image.text.len()];
    for f in &image.symbols.funcs {
        for (addr, inst) in image.decode_func(f) {
            let off = (addr - image.text_base) as usize;
            ctx[off] = ByteCtx::OneByteOpcode;
            if inst.len >= 2 && image.text[off] == 0x0F {
                ctx[off + 1] = ByteCtx::SecondOpcodeByte;
            }
        }
    }
    ctx
}

#[cfg(test)]
mod tests {
    use super::*;
    use fisec_apps::AppSpec;
    use fisec_inject::golden_run;

    #[test]
    fn draw_is_deterministic_and_in_range() {
        for idx in 0..1000u64 {
            let (o1, b1) = draw(42, idx, 997);
            let (o2, b2) = draw(42, idx, 997);
            assert_eq!((o1, b1), (o2, b2));
            assert!(o1 < 997);
            assert!(b1 < 8);
        }
        // Different seeds decorrelate.
        let a: Vec<_> = (0..64).map(|i| draw(1, i, 1 << 20)).collect();
        let b: Vec<_> = (0..64).map(|i| draw(2, i, 1 << 20)).collect();
        assert_ne!(a, b);
    }

    #[test]
    fn draw_covers_offsets_and_bits() {
        // 4k draws over a tiny segment hit every offset and every bit.
        let mut offsets = [false; 13];
        let mut bits = [false; 8];
        for i in 0..4096u64 {
            let (o, b) = draw(7, i, 13);
            offsets[o] = true;
            bits[b as usize] = true;
        }
        assert!(offsets.iter().all(|&x| x), "{offsets:?}");
        assert!(bits.iter().all(|&x| x), "{bits:?}");
    }

    #[test]
    fn latent_error_runs_classify() {
        let app = AppSpec::ftpd();
        let spec = &app.clients[0];
        let golden = golden_run(&app.image, spec).unwrap();
        // Flip a bit in _start's first instruction: guaranteed activation,
        // near-certain manifestation of some kind (or none if benign).
        let r = run_with_latent_error(&app.image, spec, &golden, 0, 6).unwrap();
        assert!(matches!(
            r.outcome,
            OutcomeClass::NotManifested
                | OutcomeClass::SystemDetection
                | OutcomeClass::FailSilenceViolation
                | OutcomeClass::Breakin
        ));
    }

    #[test]
    fn random_campaign_is_reproducible() {
        let app = AppSpec::ftpd();
        let a = run_random_campaign(&app, 30, 42);
        let b = run_random_campaign(&app, 30, 42);
        assert_eq!(a, b);
        assert_eq!(a.runs, 30);
        assert_eq!(a.no_effect + a.sd + a.fsv + a.brk, 30);
    }

    #[test]
    fn different_seeds_differ() {
        let app = AppSpec::ftpd();
        let a = run_random_campaign(&app, 40, 1);
        let b = run_random_campaign(&app, 40, 2);
        // Extremely unlikely to tally identically in every category.
        assert!(a != b || a.no_effect == 40);
    }

    #[test]
    fn errors_per_breakin_math() {
        let r = RandomCampaignResult {
            runs: 3000,
            brk: 1,
            ..Default::default()
        };
        assert_eq!(r.errors_per_breakin(), Some(3000.0));
        let r = RandomCampaignResult::default();
        assert_eq!(r.errors_per_breakin(), None);
    }

    #[test]
    fn bad_offset_is_a_hard_error() {
        let app = AppSpec::ftpd();
        let spec = &app.clients[0];
        let golden = golden_run(&app.image, spec).unwrap();
        let msg = run_with_latent_error(&app.image, spec, &golden, usize::MAX, 0).unwrap_err();
        assert!(msg.contains("out of range"), "{msg}");
        let msg = run_with_latent_error(&app.image, spec, &golden, 0, 8).unwrap_err();
        assert!(msg.contains("bit 8 out of range"), "{msg}");
    }

    #[test]
    fn out_of_range_client_is_a_hard_error() {
        let app = AppSpec::ftpd();
        let cfg = RandomConfig {
            runs: 5,
            client: 99,
            ..RandomConfig::default()
        };
        let msg = run_random_streaming(&app, &cfg, &Telemetry::disabled()).unwrap_err();
        assert!(msg.contains("client index 99 out of range"), "{msg}");
        assert!(msg.contains("valid: 0..="), "{msg}");
    }

    #[test]
    fn report_renders_rates_and_intervals() {
        let stats = RandomStats {
            app: "ftpd".into(),
            scheme: "baseline x86".into(),
            mode: "snapshot".into(),
            client: "Client1".into(),
            seed: 7,
            batch: 500,
            target_ci: None,
            result: RandomCampaignResult {
                runs: 3000,
                no_effect: 2800,
                sd: 150,
                fsv: 49,
                brk: 1,
            },
            hists: OutcomeHists::default(),
        };
        let s = render_report(&stats);
        assert!(s.contains("runs 3000"), "{s}");
        assert!(s.contains("(1 in 3000)"), "{s}");
        assert!(s.contains("Wilson 95%"), "{s}");
        assert!(s.contains("Clopper-Pearson 95%"), "{s}");
        // No break-in: rate renders without the "1 in N" suffix.
        let none = RandomStats {
            result: RandomCampaignResult {
                runs: 100,
                no_effect: 100,
                ..Default::default()
            },
            ..stats
        };
        let s = render_report(&none);
        assert!(s.contains("violation rate (BRK): 0.000e0\n"), "{s}");
    }
}
