//! Snapshot regression test: the campaigns are fully deterministic, so
//! the exact outcome tallies of a reference campaign are pinned in a
//! committed fixture. Any semantic drift in the CPU, compiler,
//! assembler, OS, clients, classifier or encoding shows up here as an
//! exact diff.
//!
//! After an *intentional* behaviour change, regenerate with:
//!
//! ```text
//! cargo run --release -p fisec-core --example gen_fixture \
//!     > crates/core/tests/fixtures/ftpd_pass_campaign.json
//! ```

use fisec_apps::AppSpec;
use fisec_core::{run_campaign, CampaignConfig, CampaignSummary};

const FIXTURE: &str = include_str!("fixtures/ftpd_pass_campaign.json");

#[test]
fn campaign_matches_committed_snapshot() {
    let mut app = AppSpec::ftpd();
    app.auth_funcs = vec!["pass"];
    app.clients.truncate(2);
    let r = run_campaign(&app, &CampaignConfig::default());
    let got = CampaignSummary::from(&r);
    let want: CampaignSummary = serde_json::from_str(FIXTURE).expect("fixture parses");
    assert_eq!(
        got, want,
        "campaign drifted from the committed snapshot; if the change is \
         intentional, regenerate the fixture (see module docs)"
    );
}

#[test]
fn snapshot_fixture_is_sane() {
    let want: CampaignSummary = serde_json::from_str(FIXTURE).unwrap();
    assert_eq!(want.app, "ftpd");
    assert_eq!(want.clients.len(), 2);
    // The fixture itself must respect the study invariants.
    for c in &want.clients {
        assert_eq!(c.counts.total(), want.runs_per_client);
    }
    assert!(want.clients[0].counts.brk > 0);
    assert_eq!(want.clients[1].counts.brk, 0);
}
