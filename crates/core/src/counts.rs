//! Outcome and location tallies.

use fisec_inject::{ErrorLocation, OutcomeClass};
use serde::{Deserialize, Serialize};

/// Tally of the five outcome classes (one Table 1 column).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct OutcomeCounts {
    /// Not activated.
    pub na: usize,
    /// Activated but not manifested.
    pub nm: usize,
    /// System detection (crash).
    pub sd: usize,
    /// Fail-silence violation.
    pub fsv: usize,
    /// Security break-in.
    pub brk: usize,
}

impl OutcomeCounts {
    /// Record one outcome.
    pub fn add(&mut self, o: OutcomeClass) {
        match o {
            OutcomeClass::NotActivated => self.na += 1,
            OutcomeClass::NotManifested => self.nm += 1,
            OutcomeClass::SystemDetection => self.sd += 1,
            OutcomeClass::FailSilenceViolation => self.fsv += 1,
            OutcomeClass::Breakin => self.brk += 1,
        }
    }

    /// Count for one class.
    pub fn get(&self, o: OutcomeClass) -> usize {
        match o {
            OutcomeClass::NotActivated => self.na,
            OutcomeClass::NotManifested => self.nm,
            OutcomeClass::SystemDetection => self.sd,
            OutcomeClass::FailSilenceViolation => self.fsv,
            OutcomeClass::Breakin => self.brk,
        }
    }

    /// Number of activated errors (everything but NA).
    pub fn activated(&self) -> usize {
        self.nm + self.sd + self.fsv + self.brk
    }

    /// Total runs.
    pub fn total(&self) -> usize {
        self.na + self.activated()
    }

    /// A class count as a percentage of activated errors (the paper's
    /// right-hand columns). `None` for NA (the paper prints a dash).
    pub fn pct_of_activated(&self, o: OutcomeClass) -> Option<f64> {
        if o == OutcomeClass::NotActivated {
            return None;
        }
        let act = self.activated();
        if act == 0 {
            return Some(0.0);
        }
        Some(self.get(o) as f64 * 100.0 / act as f64)
    }

    /// Merge another tally into this one.
    pub fn merge(&mut self, other: &OutcomeCounts) {
        self.na += other.na;
        self.nm += other.nm;
        self.sd += other.sd;
        self.fsv += other.fsv;
        self.brk += other.brk;
    }
}

/// Tally by error location (one Table 3 column; BRK∪FSV runs only).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct LocationCounts {
    /// 2BC.
    pub c2bc: usize,
    /// 2BO.
    pub c2bo: usize,
    /// 6BC1.
    pub c6bc1: usize,
    /// 6BC2.
    pub c6bc2: usize,
    /// 6BO.
    pub c6bo: usize,
    /// MISC.
    pub misc: usize,
}

impl LocationCounts {
    /// Record one location.
    pub fn add(&mut self, l: ErrorLocation) {
        match l {
            ErrorLocation::TwoByteCondOpcode => self.c2bc += 1,
            ErrorLocation::TwoByteCondOperand => self.c2bo += 1,
            ErrorLocation::SixByteCond1 => self.c6bc1 += 1,
            ErrorLocation::SixByteCond2 => self.c6bc2 += 1,
            ErrorLocation::SixByteCondOperand => self.c6bo += 1,
            ErrorLocation::Misc => self.misc += 1,
        }
    }

    /// Count for one location.
    pub fn get(&self, l: ErrorLocation) -> usize {
        match l {
            ErrorLocation::TwoByteCondOpcode => self.c2bc,
            ErrorLocation::TwoByteCondOperand => self.c2bo,
            ErrorLocation::SixByteCond1 => self.c6bc1,
            ErrorLocation::SixByteCond2 => self.c6bc2,
            ErrorLocation::SixByteCondOperand => self.c6bo,
            ErrorLocation::Misc => self.misc,
        }
    }

    /// Total tallied cases.
    pub fn total(&self) -> usize {
        self.c2bc + self.c2bo + self.c6bc1 + self.c6bc2 + self.c6bo + self.misc
    }

    /// One location as a percentage of the total. 0 when empty.
    pub fn pct(&self, l: ErrorLocation) -> f64 {
        let t = self.total();
        if t == 0 {
            0.0
        } else {
            self.get(l) as f64 * 100.0 / t as f64
        }
    }

    /// Merge another tally into this one.
    pub fn merge(&mut self, other: &LocationCounts) {
        self.c2bc += other.c2bc;
        self.c2bo += other.c2bo;
        self.c6bc1 += other.c6bc1;
        self.c6bc2 += other.c6bc2;
        self.c6bo += other.c6bo;
        self.misc += other.misc;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn outcome_counts_roundtrip() {
        let mut c = OutcomeCounts::default();
        for o in OutcomeClass::ALL {
            c.add(o);
            assert_eq!(c.get(o), 1);
        }
        assert_eq!(c.total(), 5);
        assert_eq!(c.activated(), 4);
        assert_eq!(c.pct_of_activated(OutcomeClass::NotActivated), None);
        assert_eq!(c.pct_of_activated(OutcomeClass::Breakin), Some(25.0));
    }

    #[test]
    fn zero_activated_is_zero_pct() {
        let mut c = OutcomeCounts::default();
        c.add(OutcomeClass::NotActivated);
        assert_eq!(c.pct_of_activated(OutcomeClass::Breakin), Some(0.0));
    }

    #[test]
    fn location_counts_roundtrip() {
        let mut c = LocationCounts::default();
        for l in ErrorLocation::ALL {
            c.add(l);
            assert_eq!(c.get(l), 1);
        }
        assert_eq!(c.total(), 6);
        assert!((c.pct(ErrorLocation::Misc) - 100.0 / 6.0).abs() < 1e-9);
    }

    #[test]
    fn merge_accumulates() {
        let mut a = OutcomeCounts::default();
        a.add(OutcomeClass::Breakin);
        let mut b = OutcomeCounts::default();
        b.add(OutcomeClass::Breakin);
        b.add(OutcomeClass::NotActivated);
        a.merge(&b);
        assert_eq!(a.brk, 2);
        assert_eq!(a.na, 1);
        let mut la = LocationCounts::default();
        la.add(ErrorLocation::Misc);
        let mut lb = LocationCounts::default();
        lb.add(ErrorLocation::Misc);
        la.merge(&lb);
        assert_eq!(la.misc, 2);
    }

    #[test]
    fn serde_roundtrip() {
        let mut c = OutcomeCounts::default();
        c.add(OutcomeClass::SystemDetection);
        let s = serde_json::to_string(&c).unwrap();
        let back: OutcomeCounts = serde_json::from_str(&s).unwrap();
        assert_eq!(back, c);
    }
}
