//! Regenerates the paper's **Table 1** (FTP and SSH result
//! distributions) and benchmarks the unit behind it: one breakpoint
//! injection run.

use criterion::{criterion_group, criterion_main, Criterion};
use fisec_apps::AppSpec;
use fisec_core::{run_campaign, tables, CampaignConfig};
use fisec_encoding::EncodingScheme;
use fisec_inject::{enumerate_targets, golden_run, run_injection};

fn bench(c: &mut Criterion) {
    let ftpd = AppSpec::ftpd();
    let sshd = AppSpec::sshd();

    // Regenerate the artefact.
    let cfg = CampaignConfig::default();
    let ftp = run_campaign(&ftpd, &cfg);
    let ssh = run_campaign(&sshd, &cfg);
    println!("\n== Table 1: FTP and SSH Result Distributions (baseline encoding) ==");
    println!("{}", tables::render_table1(&[&ftp, &ssh]));

    // Benchmark one injection run (an activated, quickly-crashing one).
    let set = enumerate_targets(&ftpd.image, &["pass"], true);
    let target = set.targets[0];
    let client = &ftpd.clients[0];
    let golden = golden_run(&ftpd.image, client).unwrap();
    c.bench_function("injection_run/ftpd_client1", |b| {
        b.iter(|| {
            run_injection(
                &ftpd.image,
                client,
                &golden,
                std::hint::black_box(&target),
                EncodingScheme::Baseline,
            )
            .unwrap()
        })
    });

    // And a full golden session for scale.
    c.bench_function("golden_session/ftpd_client1", |b| {
        b.iter(|| golden_run(&ftpd.image, client).unwrap())
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench
}
criterion_main!(benches);
