//! Shared client-side utilities.

/// Accumulates raw bytes and yields complete `\n`-terminated lines with
/// the terminator (and any preceding `\r`) stripped.
#[derive(Debug, Default, Clone)]
pub struct LineBuf {
    buf: Vec<u8>,
}

impl LineBuf {
    /// Empty buffer.
    pub fn new() -> LineBuf {
        LineBuf::default()
    }

    /// Append raw bytes.
    pub fn push(&mut self, data: &[u8]) {
        self.buf.extend_from_slice(data);
    }

    /// Pop the next complete line, if any.
    pub fn pop_line(&mut self) -> Option<Vec<u8>> {
        let nl = self.buf.iter().position(|b| *b == b'\n')?;
        let mut line: Vec<u8> = self.buf.drain(..=nl).collect();
        line.pop(); // '\n'
        if line.last() == Some(&b'\r') {
            line.pop();
        }
        Some(line)
    }

    /// Bytes not yet forming a complete line.
    pub fn pending(&self) -> &[u8] {
        &self.buf
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lines_split_across_chunks() {
        let mut lb = LineBuf::new();
        lb.push(b"220 re");
        assert_eq!(lb.pop_line(), None);
        lb.push(b"ady\r\n331 next\n");
        assert_eq!(lb.pop_line(), Some(b"220 ready".to_vec()));
        assert_eq!(lb.pop_line(), Some(b"331 next".to_vec()));
        assert_eq!(lb.pop_line(), None);
        assert!(lb.pending().is_empty());
    }

    #[test]
    fn bare_newline_yields_empty_line() {
        let mut lb = LineBuf::new();
        lb.push(b"\n");
        assert_eq!(lb.pop_line(), Some(Vec::new()));
    }

    #[test]
    fn pending_reports_partial() {
        let mut lb = LineBuf::new();
        lb.push(b"par");
        assert_eq!(lb.pending(), b"par");
    }
}
