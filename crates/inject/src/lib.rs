//! # fisec-inject — the NFTAPE-style breakpoint fault injector
//!
//! Reproduces the paper's §4 experimental procedure:
//!
//! 1. load the server executable;
//! 2. set a breakpoint at the instruction picked for injection;
//! 3. start the server with a scripted client logging in;
//! 4. if the breakpoint is hit, the error is **activated**: flip the
//!    chosen bit in the chosen byte (optionally through the §6.2
//!    old→new→flip→new→old mapping) and continue;
//! 5. monitor the run to completion and classify the outcome against the
//!    golden (error-free) run: **NA**, **NM**, **SD**, **FSV** or
//!    **BRK**, plus the crash latency used by Figure 4 and the error
//!    location taxonomy of Tables 2/3.

pub mod classify;
pub mod forensics;
pub mod location;
pub mod target;

pub use classify::{classify_run, GoldenRun, InjectionRun, OutcomeClass};
pub use forensics::{crash_forensics, CrashReport, PathSegment};
pub use location::ErrorLocation;
pub use target::{enumerate_targets, InjectionTarget, TargetSet};

use fisec_apps::ClientSpec;
use fisec_asm::Image;
use fisec_encoding::{remap_flip, ByteCtx, EncodingScheme};
use fisec_net::Trace;
use fisec_os::{Process, Stop};

/// Default multiplier on the golden run's instruction count used as the
/// per-run budget (runaway/hang detection).
pub const BUDGET_MULTIPLIER: u64 = 8;
/// Floor for the per-run budget.
pub const BUDGET_FLOOR: u64 = 400_000;

/// Record the golden (error-free) run for a client pattern.
///
/// # Errors
/// Propagates [`fisec_os::LoadError`] if the image cannot be loaded.
pub fn golden_run(image: &Image, client: &ClientSpec) -> Result<GoldenRun, fisec_os::LoadError> {
    let r = fisec_os::run_session(image, client.make(), 50_000_000)?;
    Ok(GoldenRun {
        stop: r.stop,
        client: r.client,
        trace: r.trace,
        icount: r.icount,
    })
}

/// Record the golden run *and* the set of instruction addresses it
/// executes. The campaign engine uses the coverage set to classify
/// targets at never-executed addresses as NA without spawning a run:
/// execution before activation is identical to golden, so a breakpoint
/// at an uncovered address can never be hit.
///
/// # Errors
/// Propagates [`fisec_os::LoadError`] if the image cannot be loaded.
pub fn golden_run_with_coverage(
    image: &Image,
    client: &ClientSpec,
) -> Result<(GoldenRun, std::collections::HashSet<u32>), fisec_os::LoadError> {
    let mut p = Process::load(image, client.make())?;
    p.set_budget(50_000_000);
    p.machine.enable_coverage();
    let stop = p.run();
    let golden = GoldenRun {
        stop,
        client: p.client_status(),
        trace: p.trace(),
        icount: p.icount(),
    };
    let coverage = p
        .machine
        .coverage()
        .expect("coverage was enabled before the run")
        .clone();
    Ok((golden, coverage))
}

/// Execute one injection experiment.
///
/// # Errors
/// Propagates [`fisec_os::LoadError`] if the image cannot be loaded.
pub fn run_injection(
    image: &Image,
    client: &ClientSpec,
    golden: &GoldenRun,
    target: &InjectionTarget,
    scheme: EncodingScheme,
) -> Result<InjectionRun, fisec_os::LoadError> {
    let mut p = Process::load(image, client.make())?;
    let budget = (golden.icount * BUDGET_MULTIPLIER).max(BUDGET_FLOOR);
    p.set_budget(budget);
    p.machine.add_breakpoint(target.addr);

    let first = p.run();
    let Stop::Breakpoint(_) = first else {
        // Instruction never executed: error not activated.
        return Ok(InjectionRun {
            outcome: OutcomeClass::NotActivated,
            activated: false,
            stop: first,
            client: p.client_status(),
            crash_latency: None,
            transient_deviation: false,
            divergence: None,
        });
    };

    // Activated: corrupt the byte and continue.
    let byte_addr = target.addr.wrapping_add(target.byte_index as u32);
    let orig = p
        .machine
        .mem
        .peek8(byte_addr)
        .expect("target byte is mapped: it was decoded from the image");
    let ctx = byte_ctx(target);
    let corrupted = remap_flip(orig, target.bit, ctx, scheme);
    p.machine
        .mem
        .poke8(byte_addr, corrupted)
        .expect("target byte is mapped");
    p.machine.remove_breakpoint(target.addr);
    let activation_icount = p.icount();

    let stop = p.run();
    let final_trace = p.trace();
    let crash_latency = match stop {
        Stop::Crashed(_) => Some(p.icount() - activation_icount),
        _ => None,
    };
    Ok(classify_run(
        golden,
        stop,
        p.client_status(),
        final_trace,
        crash_latency,
    ))
}

/// Execute every experiment in a group of targets sharing one
/// instruction address, replaying the boot-to-breakpoint prefix only
/// once.
///
/// The process boots with a breakpoint at the shared address exactly as
/// [`run_injection`] does. If the breakpoint is never hit, every target
/// in the group is NA with the same record the from-scratch path would
/// produce (pre-activation execution is deterministic). Otherwise the
/// process is checkpointed at the breakpoint and each target replays
/// only the post-flip suffix from the restored checkpoint: peek the
/// pristine byte, flip, disarm, run, classify — observably identical to
/// a from-scratch run because [`fisec_os::Process::restore`] rewinds
/// registers, memory, icount, breakpoints and the client channel.
///
/// # Errors
/// Propagates [`fisec_os::LoadError`] if the image cannot be loaded.
///
/// # Panics
/// If the targets do not all share one instruction address.
pub fn run_injection_group(
    image: &Image,
    client: &ClientSpec,
    golden: &GoldenRun,
    targets: &[InjectionTarget],
    scheme: EncodingScheme,
) -> Result<Vec<InjectionRun>, fisec_os::LoadError> {
    let Some(addr) = targets.first().map(|t| t.addr) else {
        return Ok(Vec::new());
    };
    assert!(
        targets.iter().all(|t| t.addr == addr),
        "run_injection_group requires targets sharing one address"
    );
    let mut p = Process::load(image, client.make())?;
    let budget = (golden.icount * BUDGET_MULTIPLIER).max(BUDGET_FLOOR);
    p.set_budget(budget);
    p.machine.add_breakpoint(addr);

    let first = p.run();
    let Stop::Breakpoint(_) = first else {
        // Instruction never executed: the whole group is not activated,
        // and (determinism) every from-scratch run would stop the same
        // way with the same client verdict.
        let na = InjectionRun {
            outcome: OutcomeClass::NotActivated,
            activated: false,
            stop: first,
            client: p.client_status(),
            crash_latency: None,
            transient_deviation: false,
            divergence: None,
        };
        return Ok(vec![na; targets.len()]);
    };

    let checkpoint = p.snapshot();
    let activation_icount = p.icount();
    let mut runs = Vec::with_capacity(targets.len());
    for target in targets {
        p.restore(&checkpoint);
        let byte_addr = target.addr.wrapping_add(target.byte_index as u32);
        let orig = p
            .machine
            .mem
            .peek8(byte_addr)
            .expect("target byte is mapped: it was decoded from the image");
        let ctx = byte_ctx(target);
        let corrupted = remap_flip(orig, target.bit, ctx, scheme);
        p.machine
            .mem
            .poke8(byte_addr, corrupted)
            .expect("target byte is mapped");
        p.machine.remove_breakpoint(target.addr);

        let stop = p.run();
        let final_trace = p.trace();
        let crash_latency = match stop {
            Stop::Crashed(_) => Some(p.icount() - activation_icount),
            _ => None,
        };
        runs.push(classify_run(
            golden,
            stop,
            p.client_status(),
            final_trace,
            crash_latency,
        ));
    }
    Ok(runs)
}

/// Determine the §6.2 mapping context for the corrupted byte.
fn byte_ctx(target: &InjectionTarget) -> ByteCtx {
    if target.byte_index == 0 {
        ByteCtx::OneByteOpcode
    } else if target.byte_index == 1 && target.first_byte == 0x0F {
        ByteCtx::SecondOpcodeByte
    } else {
        ByteCtx::Other
    }
}

/// Convenience: is `trace` a plausible truncated prefix of `golden`?
/// (Used for the transient-deviation analysis around crashes.)
pub fn is_trace_prefix(trace: &Trace, golden: &Trace) -> bool {
    classify::trace_is_prefix(trace, golden)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fisec_apps::AppSpec;

    #[test]
    fn byte_ctx_selection() {
        let mk = |first_byte, byte_index| InjectionTarget {
            addr: 0x1000,
            inst_len: 6,
            byte_index,
            bit: 0,
            first_byte,
            location: ErrorLocation::SixByteCond2,
            is_cond_branch: true,
        };
        assert_eq!(byte_ctx(&mk(0x74, 0)), ByteCtx::OneByteOpcode);
        assert_eq!(byte_ctx(&mk(0x0F, 1)), ByteCtx::SecondOpcodeByte);
        assert_eq!(byte_ctx(&mk(0x74, 1)), ByteCtx::Other);
        assert_eq!(byte_ctx(&mk(0x0F, 3)), ByteCtx::Other);
    }

    #[test]
    fn not_activated_when_breakpoint_unreached() {
        let app = AppSpec::ftpd();
        let client = &app.clients[0];
        let golden = golden_run(&app.image, client).unwrap();
        // Target an address in `pass` that Client3-style flows wouldn't
        // reach — simplest: an address in the *anonymous* arm while
        // logging in as a named user. Instead, inject into a function
        // the flow never calls: use `retr`'s body with Client1 (denied,
        // never retrieves). Find a branch inside `retr`.
        let f = app.image.func("retr").unwrap().clone();
        let insts = app.image.decode_func(&f);
        let (addr, inst) = insts
            .iter()
            .find(|(_, i)| i.is_cond_branch())
            .expect("retr has branches");
        let t = InjectionTarget {
            addr: *addr,
            inst_len: inst.len,
            byte_index: 0,
            bit: 0,
            first_byte: 0x74,
            location: ErrorLocation::TwoByteCondOpcode,
            is_cond_branch: true,
        };
        let r = run_injection(&app.image, client, &golden, &t, EncodingScheme::Baseline).unwrap();
        assert_eq!(r.outcome, OutcomeClass::NotActivated);
        assert!(!r.activated);
    }
}
