//! Serializable hot-spot profile data, as carried by metrics shards and
//! the `profile` trace event.
//!
//! The interpreter-side collector (`fisec_x86::ExecProfile`) uses hash
//! maps on the hot path; this is its wire form: address-sorted vectors,
//! so serialization is deterministic, merges are order-independent, and
//! a `diff` against an earlier snapshot recovers exactly one campaign's
//! contribution (the same before/after pattern the campaign trailer uses
//! for its counters).

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Dispatch/retire tallies for one basic block.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct HotBlock {
    /// Block entry EIP.
    pub addr: u32,
    /// Times the block engine dispatched this block.
    pub dispatches: u64,
    /// Instructions retired under this entry across all dispatches.
    pub retired: u64,
}

/// One instruction address still executing through the generic slow
/// path, with its operand-shape label.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SlowShape {
    /// Instruction address.
    pub addr: u32,
    /// Operand-shape label (e.g. `shl32 r32, imm`).
    pub shape: String,
    /// Times the slow path ran here.
    pub count: u64,
}

/// A complete hot-spot profile: per-block tallies, slow-path sites, the
/// single-step residue and block-cache traffic. All counters are
/// monotone under [`ProfileData::merge`], which makes [`ProfileData::diff`]
/// well-defined.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ProfileData {
    /// Per-block tallies, sorted by address.
    pub blocks: Vec<HotBlock>,
    /// Per-superblock (tier-2 trace) tallies, sorted by entry address.
    /// The same instructions also appear under their blocks' tallies:
    /// this vector attributes them to the trace that dispatched them.
    /// `serde(default)` keeps traces saved before tier 2 readable.
    #[serde(default)]
    pub hot_traces: Vec<HotBlock>,
    /// Slow-path sites, sorted by address.
    pub slow: Vec<SlowShape>,
    /// Instructions retired through the precise single-step path.
    pub stepwise_retired: u64,
    /// Blocks decoded and inserted while profiling.
    pub cache_built: u64,
    /// Dispatches served from the block cache.
    pub cache_hits: u64,
    /// Blocks dropped by invalidation.
    pub cache_invalidated: u64,
    /// Resident blocks displaced by inserts into full sets.
    #[serde(default)]
    pub cache_conflict_evictions: u64,
    /// Tier-2 traces recorded and inserted while profiling.
    #[serde(default)]
    pub trace_built: u64,
    /// Dispatches served from the trace cache.
    #[serde(default)]
    pub trace_hits: u64,
    /// Trace replays that side-exited on a mispredicted guard or a
    /// self-modification boundary.
    #[serde(default)]
    pub trace_side_exits: u64,
    /// Traces dropped by invalidation.
    #[serde(default)]
    pub trace_invalidated: u64,
}

impl ProfileData {
    /// Is there anything in this profile?
    pub fn is_empty(&self) -> bool {
        self.blocks.is_empty()
            && self.hot_traces.is_empty()
            && self.slow.is_empty()
            && self.stepwise_retired == 0
            && self.cache_built == 0
            && self.cache_hits == 0
            && self.cache_invalidated == 0
            && self.cache_conflict_evictions == 0
            && self.trace_built == 0
            && self.trace_hits == 0
            && self.trace_side_exits == 0
            && self.trace_invalidated == 0
    }

    /// Total instructions the profile accounts for.
    pub fn total_retired(&self) -> u64 {
        self.blocks.iter().map(|b| b.retired).sum::<u64>() + self.stepwise_retired
    }

    /// Fold another profile into this one (order-independent, so
    /// sharded workers merge to the same state as a sequential run).
    pub fn merge(&mut self, other: &ProfileData) {
        if other.is_empty() {
            return;
        }
        merge_tallies(&mut self.blocks, &other.blocks);
        merge_tallies(&mut self.hot_traces, &other.hot_traces);
        let mut slow: BTreeMap<u32, SlowShape> =
            self.slow.iter().map(|s| (s.addr, s.clone())).collect();
        for s in &other.slow {
            let e = slow.entry(s.addr).or_insert_with(|| SlowShape {
                addr: s.addr,
                shape: s.shape.clone(),
                count: 0,
            });
            e.count += s.count;
        }
        self.slow = slow.into_values().collect();
        self.stepwise_retired += other.stepwise_retired;
        self.cache_built += other.cache_built;
        self.cache_hits += other.cache_hits;
        self.cache_invalidated += other.cache_invalidated;
        self.cache_conflict_evictions += other.cache_conflict_evictions;
        self.trace_built += other.trace_built;
        self.trace_hits += other.trace_hits;
        self.trace_side_exits += other.trace_side_exits;
        self.trace_invalidated += other.trace_invalidated;
    }

    /// This profile minus `before` — the contribution accumulated since
    /// `before` was snapshot, assuming `before` is an earlier state of
    /// the same accumulation (every counter monotone).
    pub fn diff(&self, before: &ProfileData) -> ProfileData {
        let blocks = diff_tallies(&self.blocks, &before.blocks);
        let hot_traces = diff_tallies(&self.hot_traces, &before.hot_traces);
        let s0: BTreeMap<u32, u64> = before.slow.iter().map(|s| (s.addr, s.count)).collect();
        let slow = self
            .slow
            .iter()
            .filter_map(|s| {
                let count = s
                    .count
                    .saturating_sub(s0.get(&s.addr).copied().unwrap_or(0));
                (count != 0).then(|| SlowShape {
                    addr: s.addr,
                    shape: s.shape.clone(),
                    count,
                })
            })
            .collect();
        ProfileData {
            blocks,
            hot_traces,
            slow,
            stepwise_retired: self
                .stepwise_retired
                .saturating_sub(before.stepwise_retired),
            cache_built: self.cache_built.saturating_sub(before.cache_built),
            cache_hits: self.cache_hits.saturating_sub(before.cache_hits),
            cache_invalidated: self
                .cache_invalidated
                .saturating_sub(before.cache_invalidated),
            cache_conflict_evictions: self
                .cache_conflict_evictions
                .saturating_sub(before.cache_conflict_evictions),
            trace_built: self.trace_built.saturating_sub(before.trace_built),
            trace_hits: self.trace_hits.saturating_sub(before.trace_hits),
            trace_side_exits: self
                .trace_side_exits
                .saturating_sub(before.trace_side_exits),
            trace_invalidated: self
                .trace_invalidated
                .saturating_sub(before.trace_invalidated),
        }
    }
}

/// Fold `other` into `into`, summing tallies per address and keeping the
/// result address-sorted.
fn merge_tallies(into: &mut Vec<HotBlock>, other: &[HotBlock]) {
    let mut map: BTreeMap<u32, HotBlock> = into.iter().map(|b| (b.addr, *b)).collect();
    for b in other {
        let e = map.entry(b.addr).or_insert(HotBlock {
            addr: b.addr,
            dispatches: 0,
            retired: 0,
        });
        e.dispatches += b.dispatches;
        e.retired += b.retired;
    }
    *into = map.into_values().collect();
}

/// `after` minus `before`, per address, dropping zero entries.
fn diff_tallies(after: &[HotBlock], before: &[HotBlock]) -> Vec<HotBlock> {
    let b0: BTreeMap<u32, HotBlock> = before.iter().map(|b| (b.addr, *b)).collect();
    after
        .iter()
        .filter_map(|b| {
            let prev = b0.get(&b.addr).copied().unwrap_or_default();
            let d = HotBlock {
                addr: b.addr,
                dispatches: b.dispatches.saturating_sub(prev.dispatches),
                retired: b.retired.saturating_sub(prev.retired),
            };
            (d.dispatches != 0 || d.retired != 0).then_some(d)
        })
        .collect()
}

impl ProfileData {
    /// Slow-path counts aggregated by shape label, heaviest first.
    pub fn slow_by_shape(&self) -> Vec<(String, u64, usize)> {
        let mut by_shape: BTreeMap<&str, (u64, usize)> = BTreeMap::new();
        for s in &self.slow {
            let e = by_shape.entry(s.shape.as_str()).or_insert((0, 0));
            e.0 += s.count;
            e.1 += 1;
        }
        let mut v: Vec<(String, u64, usize)> = by_shape
            .into_iter()
            .map(|(shape, (count, sites))| (shape.to_string(), count, sites))
            .collect();
        v.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> ProfileData {
        ProfileData {
            blocks: vec![
                HotBlock {
                    addr: 0x1000,
                    dispatches: 2,
                    retired: 10,
                },
                HotBlock {
                    addr: 0x2000,
                    dispatches: 1,
                    retired: 3,
                },
            ],
            slow: vec![SlowShape {
                addr: 0x1004,
                shape: "shl32 r32, imm".to_string(),
                count: 4,
            }],
            stepwise_retired: 7,
            cache_built: 2,
            cache_hits: 3,
            cache_invalidated: 1,
            ..ProfileData::default()
        }
    }

    #[test]
    fn merge_folds_by_address() {
        let mut a = sample();
        let b = ProfileData {
            blocks: vec![
                HotBlock {
                    addr: 0x1000,
                    dispatches: 1,
                    retired: 5,
                },
                HotBlock {
                    addr: 0x3000,
                    dispatches: 4,
                    retired: 4,
                },
            ],
            slow: vec![SlowShape {
                addr: 0x1004,
                shape: "shl32 r32, imm".to_string(),
                count: 1,
            }],
            stepwise_retired: 1,
            ..ProfileData::default()
        };
        a.merge(&b);
        assert_eq!(a.blocks.len(), 3);
        assert_eq!(a.blocks[0].retired, 15);
        assert_eq!(a.slow[0].count, 5);
        assert_eq!(a.stepwise_retired, 8);
        assert_eq!(a.total_retired(), 30);
        // Merging an empty profile is a no-op.
        let before = a.clone();
        a.merge(&ProfileData::default());
        assert_eq!(a, before);
    }

    #[test]
    fn merge_is_order_independent() {
        let (a, b) = (sample(), {
            let mut x = sample();
            x.blocks[0].addr = 0x4000;
            x
        });
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, ba);
    }

    #[test]
    fn diff_recovers_the_increment() {
        let before = sample();
        let mut after = before.clone();
        let inc = ProfileData {
            blocks: vec![HotBlock {
                addr: 0x2000,
                dispatches: 5,
                retired: 20,
            }],
            slow: vec![SlowShape {
                addr: 0x5000,
                shape: "div32 r32".to_string(),
                count: 2,
            }],
            stepwise_retired: 3,
            cache_built: 1,
            cache_hits: 10,
            cache_invalidated: 0,
            hot_traces: vec![HotBlock {
                addr: 0x2000,
                dispatches: 2,
                retired: 16,
            }],
            trace_built: 1,
            trace_hits: 2,
            trace_side_exits: 1,
            ..ProfileData::default()
        };
        after.merge(&inc);
        assert_eq!(after.diff(&before), inc);
        assert!(before.diff(&before).is_empty());
    }

    #[test]
    fn profiles_saved_before_tier2_still_deserialize() {
        // A trace written before the tier-2 fields existed: the
        // `serde(default)` markers must zero-fill them, not error.
        let old = r#"{"blocks":[{"addr":4096,"dispatches":2,"retired":10}],"slow":[],
                      "stepwise_retired":7,"cache_built":2,"cache_hits":3,"cache_invalidated":1}"#;
        let p: ProfileData = serde_json::from_str(old).unwrap();
        assert_eq!(p.blocks.len(), 1);
        assert_eq!(p.stepwise_retired, 7);
        assert!(p.hot_traces.is_empty());
        assert_eq!(p.trace_built, 0);
        assert_eq!(p.trace_hits, 0);
        assert_eq!(p.cache_conflict_evictions, 0);
    }

    #[test]
    fn slow_aggregates_by_shape() {
        let mut p = sample();
        p.slow.push(SlowShape {
            addr: 0x9000,
            shape: "shl32 r32, imm".to_string(),
            count: 6,
        });
        p.slow.push(SlowShape {
            addr: 0x9004,
            shape: "div32 r32".to_string(),
            count: 1,
        });
        let by = p.slow_by_shape();
        assert_eq!(by[0], ("shl32 r32, imm".to_string(), 10, 2));
        assert_eq!(by[1], ("div32 r32".to_string(), 1, 1));
    }
}
