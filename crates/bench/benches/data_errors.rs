//! Extension experiment: single-bit errors in the **data segment** (the
//! paper's future-work direction on error propagation). Prints the
//! per-symbol vulnerability table and benchmarks one latent data-error
//! session.

use criterion::{criterion_group, criterion_main, Criterion};
use fisec_apps::AppSpec;
use fisec_core::data_errors::{render, run_data_campaign};

fn bench(c: &mut Criterion) {
    println!("\n== extension: data-segment single-bit errors (attack clients) ==");
    for mk in [AppSpec::ftpd, AppSpec::sshd] {
        let mut app = mk();
        app.clients.truncate(1);
        let r = run_data_campaign(&app, 32);
        println!("{}", render(&r));
    }

    let mut app = AppSpec::ftpd();
    app.clients.truncate(1);
    c.bench_function("data_error_campaign/small_symbols", |b| {
        b.iter(|| run_data_campaign(std::hint::black_box(&app), 4))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
