//! Live campaign progress on stderr: runs/s, completion, ETA and the
//! running per-outcome tally.
//!
//! Workers report per *group* (not per run), so the meter's mutex is
//! coarse-grained; prints are additionally throttled to a few per
//! second so a fast campaign is not dominated by terminal writes.

use std::io::Write;
use std::sync::Mutex;
use std::time::Instant;

/// Outcome labels in tally order (Table 1 order).
pub const OUTCOME_LABELS: [&str; 5] = ["NA", "NM", "SD", "FSV", "BRK"];

/// Minimum interval between prints.
const PRINT_EVERY_MICROS: u64 = 250_000;

/// Below this much elapsed wall-clock the throughput estimate is noise
/// (a first batch can land within microseconds of `begin`), so the
/// meter prints `--` instead of an extrapolated rate/ETA.
const MIN_RATE_WINDOW_MICROS: u64 = 100_000;

#[derive(Debug)]
struct State {
    label: String,
    total: u64,
    done: u64,
    /// Runs already complete at `begin` time (a resumed ledger): they
    /// count toward completion but not toward the throughput estimate,
    /// which would otherwise credit instantaneous work and wreck the
    /// ETA.
    initial: u64,
    groups: u64,
    outcomes: [u64; 5],
    started: Instant,
    last_print_micros: u64,
    printed: bool,
}

/// The live meter. Disabled instances are inert.
#[derive(Debug)]
pub struct Progress {
    enabled: bool,
    state: Mutex<State>,
}

impl Progress {
    /// New meter; when `enabled` is false every method is a no-op.
    pub fn new(enabled: bool) -> Progress {
        Progress {
            enabled,
            state: Mutex::new(State {
                label: String::new(),
                total: 0,
                done: 0,
                initial: 0,
                groups: 0,
                outcomes: [0; 5],
                started: Instant::now(),
                last_print_micros: 0,
                printed: false,
            }),
        }
    }

    /// Is the meter printing?
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// Start a new campaign of `total_runs` expected runs.
    ///
    /// # Panics
    /// If another reporter panicked (poisoned lock).
    pub fn begin(&self, label: &str, total_runs: u64) {
        self.begin_resumed(label, total_runs, [0; 5], 0);
    }

    /// Start a campaign that is *resuming* earlier work: `outcomes`
    /// tallies the runs already committed before this invocation. They
    /// count toward completion and the outcome tally, but are excluded
    /// from the throughput/ETA estimate (only runs finished since this
    /// call measure the live rate).
    ///
    /// # Panics
    /// If another reporter panicked (poisoned lock).
    pub fn begin_resumed(&self, label: &str, total_runs: u64, outcomes: [u64; 5], groups: u64) {
        if !self.enabled {
            return;
        }
        let mut st = self.state.lock().expect("no reporter panicked");
        st.label = label.to_string();
        st.total = total_runs;
        st.done = outcomes.iter().sum();
        st.initial = st.done;
        st.groups = groups;
        st.outcomes = outcomes;
        st.started = Instant::now();
        st.last_print_micros = 0;
        st.printed = false;
    }

    /// Record a finished batch: per-outcome run counts plus how many
    /// groups it closed. Prints at most every ~250 ms.
    ///
    /// # Panics
    /// If another reporter panicked (poisoned lock).
    pub fn add(&self, outcomes: [u64; 5], groups: u64) {
        if !self.enabled {
            return;
        }
        let mut st = self.state.lock().expect("no reporter panicked");
        for (t, d) in st.outcomes.iter_mut().zip(&outcomes) {
            *t += d;
        }
        st.done += outcomes.iter().sum::<u64>();
        st.groups += groups;
        let elapsed = st.started.elapsed().as_micros() as u64;
        if elapsed.saturating_sub(st.last_print_micros) >= PRINT_EVERY_MICROS {
            st.last_print_micros = elapsed;
            Progress::print(&mut st, elapsed);
        }
    }

    /// Print the final line (if anything was ever printed, end it with
    /// a newline so later stderr output starts clean).
    ///
    /// # Panics
    /// If another reporter panicked (poisoned lock).
    pub fn finish(&self) {
        if !self.enabled {
            return;
        }
        let mut st = self.state.lock().expect("no reporter panicked");
        let elapsed = st.started.elapsed().as_micros() as u64;
        Progress::print(&mut st, elapsed);
        if st.printed {
            eprintln!();
            st.printed = false;
        }
    }

    fn print(st: &mut State, elapsed_micros: u64) {
        let fresh = st.done.saturating_sub(st.initial);
        let pace = pace_string(fresh, elapsed_micros, st.total, st.done);
        let pct = if st.total == 0 {
            100.0
        } else {
            st.done as f64 * 100.0 / st.total as f64
        };
        let mut tally = String::new();
        for (label, n) in OUTCOME_LABELS.iter().zip(&st.outcomes) {
            tally.push_str(&format!("  {label} {n}"));
        }
        eprint!(
            "\r{}: {}/{} runs ({pct:.1}%)  {} groups  {pace}{tally}   ",
            st.label, st.done, st.total, st.groups
        );
        let _ = std::io::stderr().flush();
        st.printed = true;
    }
}

/// Rate/ETA fragment of the meter line. The rate is measured over
/// *this invocation's* work only (`fresh` excludes runs a resumed
/// ledger already held), and below the minimum wall-clock window any
/// extrapolation is noise, so the meter declines to guess.
fn pace_string(fresh: u64, elapsed_micros: u64, total: u64, done: u64) -> String {
    if elapsed_micros < MIN_RATE_WINDOW_MICROS || fresh == 0 {
        return "-- runs/s  ETA --".to_string();
    }
    let rate = fresh as f64 / (elapsed_micros as f64 / 1e6);
    let eta = if total > done {
        (total - done) as f64 / rate
    } else {
        0.0
    };
    format!("{rate:.0} runs/s  ETA {eta:.1}s")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_meter_is_inert() {
        let p = Progress::new(false);
        assert!(!p.enabled());
        p.begin("ftpd", 100);
        p.add([1, 2, 3, 4, 5], 1);
        p.finish();
        let st = p.state.lock().unwrap();
        assert_eq!(st.done, 0, "disabled meter must not accumulate");
    }

    #[test]
    fn tallies_accumulate_per_outcome() {
        // Enabled meter, but throttling keeps the test from printing
        // more than the final line to stderr.
        let p = Progress::new(true);
        p.begin("test", 30);
        p.add([10, 0, 0, 0, 0], 2);
        p.add([5, 5, 4, 0, 1], 3);
        {
            let st = p.state.lock().unwrap();
            assert_eq!(st.done, 25);
            assert_eq!(st.groups, 5);
            assert_eq!(st.outcomes, [15, 5, 4, 0, 1]);
        }
        p.finish();
    }

    #[test]
    fn resumed_runs_count_toward_done_but_not_rate() {
        let p = Progress::new(true);
        p.begin_resumed("resume", 1000, [400, 50, 30, 10, 10], 2);
        {
            let st = p.state.lock().unwrap();
            assert_eq!(st.done, 500);
            assert_eq!(st.initial, 500);
            assert_eq!(st.outcomes, [400, 50, 30, 10, 10]);
            assert_eq!(st.groups, 2);
        }
        p.add([100, 0, 0, 0, 0], 1);
        let st = p.state.lock().unwrap();
        assert_eq!(st.done, 600);
        assert_eq!(st.done.saturating_sub(st.initial), 100);
        drop(st);
        p.finish();
    }

    #[test]
    fn first_batch_suppresses_the_rate_estimate() {
        // A batch landing microseconds after begin() must not print an
        // extrapolated (astronomical) rate.
        assert_eq!(pace_string(10, 10, 100, 10), "-- runs/s  ETA --");
        // Zero elapsed exactly: still no division, still defined.
        assert_eq!(pace_string(10, 0, 100, 10), "-- runs/s  ETA --");
        // Past the window with fresh work: a real rate and ETA.
        let s = pace_string(50, 1_000_000, 100, 50);
        assert_eq!(s, "50 runs/s  ETA 1.0s");
        // Nothing fresh yet (a just-resumed ledger): no rate claims
        // even after the window elapses.
        assert_eq!(pace_string(0, 1_000_000, 100, 50), "-- runs/s  ETA --");
        // Overshooting total (target-ci stop) pins the ETA at zero.
        assert_eq!(pace_string(60, 1_000_000, 50, 60), "60 runs/s  ETA 0.0s");
    }

    #[test]
    fn begin_resets_between_campaigns() {
        let p = Progress::new(true);
        p.begin("a", 10);
        p.add([10, 0, 0, 0, 0], 1);
        p.begin("b", 20);
        let st = p.state.lock().unwrap();
        assert_eq!(st.done, 0);
        assert_eq!(st.total, 20);
        assert_eq!(st.label, "b");
    }
}
