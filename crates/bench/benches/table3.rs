//! Regenerates the paper's **Table 3** (break-ins and fail-silence
//! violations by error location) and benchmarks target enumeration.

use criterion::{criterion_group, criterion_main, Criterion};
use fisec_apps::AppSpec;
use fisec_core::{run_campaign, tables, CampaignConfig};
use fisec_inject::enumerate_targets;

fn bench(c: &mut Criterion) {
    let ftpd = AppSpec::ftpd();
    let sshd = AppSpec::sshd();

    let cfg = CampaignConfig::default();
    let ftp = run_campaign(&ftpd, &cfg);
    let ssh = run_campaign(&sshd, &cfg);
    println!("\n== Table 2: Error Location Abbreviations ==");
    println!("{}", tables::render_table2());
    println!("== Table 3: Break-ins and Fail Silence Violations by Location ==");
    println!("{}", tables::render_table3(&[&ftp, &ssh]));

    c.bench_function("enumerate_targets/ftpd_auth", |b| {
        b.iter(|| {
            enumerate_targets(
                std::hint::black_box(&ftpd.image),
                &fisec_apps::FTPD_AUTH_FUNCS,
                false,
            )
        })
    });
    c.bench_function("enumerate_targets/sshd_auth", |b| {
        b.iter(|| {
            enumerate_targets(
                std::hint::black_box(&sshd.image),
                &fisec_apps::SSHD_AUTH_FUNCS,
                false,
            )
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(30);
    targets = bench
}
criterion_main!(benches);
