//! Offline stand-in for `serde_json`: renders and parses the vendored
//! serde [`Value`] data model. Output matches serde_json's formatting
//! conventions (compact `{"k":v}` and pretty two-space indent) so
//! existing snapshot fixtures and string assertions keep working.

use serde::{Deserialize, Serialize, Value};
use std::fmt;

/// Serialization/parse error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl Error {
    fn new(m: impl Into<String>) -> Error {
        Error(m.into())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(e: serde::Error) -> Error {
        Error(e.to_string())
    }
}

/// Serialize `value` as compact JSON.
///
/// # Errors
/// [`Error`] if the value contains a non-finite float.
pub fn to_string<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.serialize(), None, 0, &mut out)?;
    Ok(out)
}

/// Serialize `value` as pretty JSON (two-space indent).
///
/// # Errors
/// [`Error`] if the value contains a non-finite float.
pub fn to_string_pretty<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.serialize(), Some(2), 0, &mut out)?;
    Ok(out)
}

/// Parse JSON text into `T`.
///
/// # Errors
/// [`Error`] on malformed JSON or a shape mismatch with `T`.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new(format!(
            "trailing characters at offset {}",
            p.pos
        )));
    }
    Ok(T::deserialize(&v)?)
}

fn write_value(
    v: &Value,
    indent: Option<usize>,
    level: usize,
    out: &mut String,
) -> Result<(), Error> {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::UInt(n) => {
            use std::fmt::Write;
            let _ = write!(out, "{n}");
        }
        Value::Int(n) => {
            use std::fmt::Write;
            let _ = write!(out, "{n}");
        }
        Value::Float(f) => {
            if !f.is_finite() {
                return Err(Error::new("cannot serialize non-finite float"));
            }
            // `{}` on f64 prints the shortest representation that
            // round-trips; whole numbers get a ".0" to stay floats.
            if f.fract() == 0.0 && f.abs() < 1e15 {
                out.push_str(&format!("{f:.1}"));
            } else {
                out.push_str(&format!("{f}"));
            }
        }
        Value::Str(s) => write_string(s, out),
        Value::Array(xs) => {
            if xs.is_empty() {
                out.push_str("[]");
                return Ok(());
            }
            out.push('[');
            for (i, x) in xs.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(indent, level + 1, out);
                write_value(x, indent, level + 1, out)?;
            }
            newline_indent(indent, level, out);
            out.push(']');
        }
        Value::Object(fields) => {
            if fields.is_empty() {
                out.push_str("{}");
                return Ok(());
            }
            out.push('{');
            for (i, (k, x)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(indent, level + 1, out);
                write_string(k, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(x, indent, level + 1, out)?;
            }
            newline_indent(indent, level, out);
            out.push('}');
        }
    }
    Ok(())
}

fn newline_indent(indent: Option<usize>, level: usize, out: &mut String) {
    if let Some(w) = indent {
        out.push('\n');
        out.push_str(&" ".repeat(w * level));
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    // Copy maximal runs that need no escaping in one push_str; only
    // `"`, `\` and C0 controls break a run (multi-byte UTF-8 passes
    // through verbatim).
    let bytes = s.as_bytes();
    let mut start = 0;
    for (i, &b) in bytes.iter().enumerate() {
        let esc: &str = match b {
            b'"' => "\\\"",
            b'\\' => "\\\\",
            b'\n' => "\\n",
            b'\r' => "\\r",
            b'\t' => "\\t",
            c if c < 0x20 => {
                out.push_str(&s[start..i]);
                use std::fmt::Write;
                let _ = write!(out, "\\u{:04x}", u32::from(c));
                start = i + 1;
                continue;
            }
            _ => continue,
        };
        out.push_str(&s[start..i]);
        out.push_str(esc);
        start = i + 1;
    }
    out.push_str(&s[start..]);
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected '{}' at offset {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_lit(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') if self.eat_lit("null") => Ok(Value::Null),
            Some(b't') if self.eat_lit("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_lit("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            _ => Err(Error::new(format!(
                "unexpected input at offset {}",
                self.pos
            ))),
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut xs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(xs));
        }
        loop {
            self.skip_ws();
            xs.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(xs));
                }
                _ => return Err(Error::new(format!("bad array at offset {}", self.pos))),
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            fields.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                _ => return Err(Error::new(format!("bad object at offset {}", self.pos))),
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            let rest = &self.bytes[self.pos..];
            // Bulk-copy the longest plain run: anything but a close
            // quote, an escape or a multi-byte sequence. Scanning and
            // validating per run (instead of per character over the
            // whole remaining input) keeps large documents linear.
            let plain = rest
                .iter()
                .position(|&c| c == b'"' || c == b'\\' || c >= 0x80)
                .unwrap_or(rest.len());
            if plain > 0 {
                let run = std::str::from_utf8(&rest[..plain]).expect("ASCII run is UTF-8");
                s.push_str(run);
                self.pos += plain;
                continue;
            }
            let Some(&b) = rest.first() else {
                return Err(Error::new("unterminated string"));
            };
            match b {
                b'"' => {
                    self.pos += 1;
                    return Ok(s);
                }
                b'\\' => {
                    let esc = rest
                        .get(1)
                        .copied()
                        .ok_or_else(|| Error::new("unterminated escape"))?;
                    self.pos += 2;
                    match esc {
                        b'"' => s.push('"'),
                        b'\\' => s.push('\\'),
                        b'/' => s.push('/'),
                        b'n' => s.push('\n'),
                        b'r' => s.push('\r'),
                        b't' => s.push('\t'),
                        b'b' => s.push('\u{8}'),
                        b'f' => s.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| Error::new("bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| Error::new("bad \\u escape"))?;
                            self.pos += 4;
                            // Surrogate pairs are not produced by our
                            // writer; reject rather than mis-decode.
                            let c = char::from_u32(code)
                                .ok_or_else(|| Error::new("bad \\u code point"))?;
                            s.push(c);
                        }
                        _ => return Err(Error::new("unknown escape")),
                    }
                }
                _ => {
                    // Consume one multi-byte UTF-8 code point: validate
                    // just its own bytes, not the rest of the input.
                    let len = match b {
                        0xC0..=0xDF => 2,
                        0xE0..=0xEF => 3,
                        0xF0..=0xF7 => 4,
                        _ => return Err(Error::new("invalid UTF-8")),
                    };
                    let chunk = rest.get(..len).ok_or_else(|| Error::new("invalid UTF-8"))?;
                    let tail =
                        std::str::from_utf8(chunk).map_err(|_| Error::new("invalid UTF-8"))?;
                    s.push(tail.chars().next().unwrap());
                    self.pos += len;
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text =
            std::str::from_utf8(&self.bytes[start..self.pos]).expect("number bytes are ASCII");
        if float {
            text.parse::<f64>()
                .map(Value::Float)
                .map_err(|_| Error::new(format!("bad number {text:?}")))
        } else if let Some(stripped) = text.strip_prefix('-') {
            stripped
                .parse::<u64>()
                .map(|n| Value::Int(-(n as i64)))
                .map_err(|_| Error::new(format!("bad number {text:?}")))
        } else {
            text.parse::<u64>()
                .map(Value::UInt)
                .map_err(|_| Error::new(format!("bad number {text:?}")))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compact_and_pretty_shapes() {
        let v = Value::Object(vec![
            ("brk".into(), Value::UInt(1)),
            ("name".into(), Value::Str("a\"b".into())),
            ("xs".into(), Value::Array(vec![Value::Int(-2), Value::Null])),
        ]);
        assert_eq!(
            to_string(&v).unwrap(),
            r#"{"brk":1,"name":"a\"b","xs":[-2,null]}"#
        );
        let pretty = to_string_pretty(&v).unwrap();
        assert!(pretty.contains("\"brk\": 1"), "{pretty}");
        assert!(
            pretty.contains("\n  \"xs\": [\n    -2,\n    null\n  ]"),
            "{pretty}"
        );
    }

    #[test]
    fn parse_round_trip() {
        let v = Value::Object(vec![
            ("f".into(), Value::Float(0.912345)),
            ("w".into(), Value::Float(1.0)),
            ("n".into(), Value::Int(-5)),
            ("u".into(), Value::UInt(u64::from(u32::MAX) + 1)),
            ("s".into(), Value::Str("line\nbreak\t\"q\"".into())),
            ("e".into(), Value::Object(vec![])),
            ("a".into(), Value::Array(vec![])),
        ]);
        for render in [to_string(&v).unwrap(), to_string_pretty(&v).unwrap()] {
            let back: Value = from_str(&render).unwrap();
            assert_eq!(back, v, "render: {render}");
        }
    }

    #[test]
    fn whole_floats_stay_floats() {
        assert_eq!(to_string(&Value::Float(1.0)).unwrap(), "1.0");
        let back: Value = from_str("1.0").unwrap();
        assert_eq!(back, Value::Float(1.0));
    }

    #[test]
    fn errors_are_reported() {
        assert!(from_str::<Value>("{").is_err());
        assert!(from_str::<Value>("[1,]").is_err());
        assert!(from_str::<Value>("12 34").is_err());
        assert!(from_str::<Value>("\"abc").is_err());
        assert!(to_string(&Value::Float(f64::NAN)).is_err());
    }

    #[test]
    fn unicode_escapes_parse() {
        let back: String = from_str(r#""aAé""#).unwrap();
        assert_eq!(back, "aAé");
    }
}
