//! Chrome trace-event export: turns the span events of a saved trace
//! into the JSON object format `chrome://tracing` and Perfetto load
//! directly (<https://ui.perfetto.dev>).
//!
//! Every span becomes one complete event (`"ph":"X"`) with microsecond
//! `ts`/`dur` relative to the campaign epoch; the worker lane maps to
//! `tid`, and the whole campaign shares `pid` 1. Non-span events in the
//! stream are ignored, so the exporter runs over any saved JSONL trace.

use crate::event::{SpanEvent, TraceEvent};
use serde::Value;

/// Extract the spans of a trace as Chrome trace-event JSON (one object,
/// `{"traceEvents":[...]}`).
pub fn chrome_trace_json(events: &[TraceEvent]) -> String {
    let trace_events: Vec<Value> = events
        .iter()
        .filter_map(|e| match e {
            TraceEvent::Span(s) => Some(span_value(s)),
            _ => None,
        })
        .collect();
    let root = Value::Object(vec![
        ("traceEvents".to_string(), Value::Array(trace_events)),
        ("displayTimeUnit".to_string(), Value::Str("ms".to_string())),
    ]);
    serde_json::to_string(&root).expect("span fields contain no non-finite floats")
}

fn span_value(s: &SpanEvent) -> Value {
    let mut fields = vec![
        ("name".to_string(), Value::Str(s.name.clone())),
        ("cat".to_string(), Value::Str(s.cat.clone())),
        ("ph".to_string(), Value::Str("X".to_string())),
        ("ts".to_string(), Value::UInt(s.ts)),
        ("dur".to_string(), Value::UInt(s.dur)),
        ("pid".to_string(), Value::UInt(1)),
        ("tid".to_string(), Value::UInt(u64::from(s.tid))),
    ];
    if let Some(addr) = s.addr {
        fields.push((
            "args".to_string(),
            Value::Object(vec![(
                "addr".to_string(),
                Value::Str(format!("{addr:#010x}")),
            )]),
        ));
    }
    Value::Object(fields)
}

/// Verify the spans form a strictly nested (laminar) family per lane:
/// any two spans on one `tid` are either disjoint or one contains the
/// other. Trace viewers render overlapping-but-not-nested spans
/// nonsensically, so the exporter's tests and the campaign engine's
/// differential tests both pin this invariant.
///
/// # Errors
/// A message naming the first offending pair.
pub fn check_span_nesting(events: &[TraceEvent]) -> Result<(), String> {
    let spans: Vec<&SpanEvent> = events
        .iter()
        .filter_map(|e| match e {
            TraceEvent::Span(s) => Some(s),
            _ => None,
        })
        .collect();
    for (i, a) in spans.iter().enumerate() {
        for b in &spans[i + 1..] {
            if a.tid != b.tid {
                continue;
            }
            let (a0, a1) = (a.ts, a.ts + a.dur);
            let (b0, b1) = (b.ts, b.ts + b.dur);
            let disjoint = a1 <= b0 || b1 <= a0;
            let nested = (a0 <= b0 && b1 <= a1) || (b0 <= a0 && a1 <= b1);
            if !disjoint && !nested {
                return Err(format!(
                    "spans overlap without nesting on tid {}: \
                     {} [{a0},{a1}) vs {} [{b0},{b1})",
                    a.tid, a.name, b.name
                ));
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(name: &str, tid: u32, ts: u64, dur: u64) -> TraceEvent {
        TraceEvent::Span(SpanEvent {
            name: name.to_string(),
            cat: "phase".to_string(),
            tid,
            ts,
            dur,
            addr: (name == "group").then_some(0x0804_9000),
        })
    }

    #[test]
    fn export_is_valid_json_with_one_event_per_span() {
        let events = vec![
            span("campaign", 0, 0, 1000),
            span("group", 1, 10, 500),
            span("boot", 1, 10, 100),
            TraceEvent::CampaignEnd(crate::CampaignEndEvent::default()),
        ];
        let json = chrome_trace_json(&events);
        let parsed: Value = serde_json::from_str(&json).expect("export must be valid JSON");
        let Value::Array(te) = parsed.field("traceEvents") else {
            panic!("missing traceEvents array: {json}");
        };
        assert_eq!(te.len(), 3, "non-span events must be ignored");
        let Value::Object(first) = &te[0] else {
            panic!("event not an object");
        };
        let get = |k: &str| {
            first
                .iter()
                .find(|(n, _)| n == k)
                .map(|(_, v)| v.clone())
                .unwrap_or(Value::Null)
        };
        assert_eq!(get("ph"), Value::Str("X".to_string()));
        assert_eq!(get("pid"), Value::UInt(1));
        assert_eq!(get("tid"), Value::UInt(0));
        assert_eq!(get("dur"), Value::UInt(1000));
        // The group span carries its target address as an arg.
        let Value::Object(group) = &te[1] else {
            panic!("event not an object");
        };
        let args = group
            .iter()
            .find(|(n, _)| n == "args")
            .map(|(_, v)| v.clone())
            .expect("group span has args");
        assert_eq!(
            *args.field("addr"),
            Value::Str("0x08049000".to_string()),
            "{json}"
        );
    }

    #[test]
    fn nesting_check_accepts_laminar_families() {
        let events = vec![
            span("campaign", 0, 0, 1000),
            span("client", 0, 0, 400),
            span("client", 0, 400, 600),
            span("group", 1, 50, 300),
            span("boot", 1, 50, 100),
            span("run", 1, 150, 200), // touches the group's end: nested
        ];
        check_span_nesting(&events).unwrap();
    }

    #[test]
    fn nesting_check_rejects_partial_overlap() {
        let events = vec![span("a", 2, 0, 100), span("b", 2, 50, 100)];
        let err = check_span_nesting(&events).unwrap_err();
        assert!(err.contains("tid 2"), "{err}");
        // The same intervals on different lanes are fine.
        let events = vec![span("a", 2, 0, 100), span("b", 3, 50, 100)];
        check_span_nesting(&events).unwrap();
    }
}
