//! Latent-error execution: the §7 random-injection primitive.
//!
//! The breakpoint injector in the crate root models *transient* errors
//! that appear mid-run. The concluding-remarks experiment instead
//! plants a **latent** error — a corrupted text byte present from the
//! moment the page is loaded (§5.4's memory-error model) — and runs the
//! whole session against it. There is no activation breakpoint and no
//! crash-latency anchor; a run indistinguishable from golden is simply
//! "no effect".
//!
//! [`LatentRunner`] is the per-worker executor the random tier drives
//! millions of times. It comes in the campaign engine's two execution
//! modes, pinned bit-identical by differential tests:
//!
//! * [`LatentRunner::snapshot`] boots the pristine image once,
//!   checkpoints at icount 0, and serves each run as restore → poke the
//!   corrupted byte → run. Restoring rewinds registers, memory, icount,
//!   and the client channel, so the poke lands on exactly the state a
//!   fresh boot of a corrupted image would have — without paying the
//!   load cost per run.
//! * [`LatentRunner::from_scratch`] keeps a private scratch [`Image`],
//!   writes the corrupted byte into its text, boots a fresh process,
//!   and repairs the byte after — the oracle the snapshot path is
//!   checked against.

use crate::classify::{classify_run, GoldenRun, InjectionRun, OutcomeClass};
use crate::{EngineOpts, RunMeta, BUDGET_FLOOR, BUDGET_MULTIPLIER};
use fisec_apps::ClientSpec;
use fisec_asm::Image;
use fisec_os::{Process, ProcessSnapshot};
use std::time::Instant;

/// One latent text-segment error: the byte at `offset` (relative to the
/// text base) reads `corrupted` for the whole session. The caller picks
/// `corrupted` — a plain flip, or the §6.2 remap→flip→remap transform —
/// so the runner stays agnostic of encoding schemes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LatentError {
    /// Byte offset into the text segment.
    pub offset: usize,
    /// The value the corrupted byte holds.
    pub corrupted: u8,
}

enum Inner {
    /// Pristine process checkpointed at icount 0.
    Snapshot {
        process: Box<Process>,
        checkpoint: Box<ProcessSnapshot>,
    },
    /// Private image clone whose text is patched and repaired per run.
    FromScratch { scratch: Image },
}

/// Reusable latent-error executor for one (image, client) pair. Create
/// one per worker thread; every [`run`](LatentRunner::run) is
/// independent of the previous one.
pub struct LatentRunner<'a> {
    client: &'a ClientSpec,
    engine: EngineOpts,
    budget: u64,
    text_base: u32,
    text_len: usize,
    inner: Inner,
}

impl<'a> LatentRunner<'a> {
    /// Snapshot-mode runner: boot once, checkpoint at icount 0, serve
    /// runs as restore + poke + run.
    ///
    /// # Errors
    /// Propagates [`fisec_os::LoadError`] if the image cannot be loaded.
    pub fn snapshot(
        image: &'a Image,
        client: &'a ClientSpec,
        golden: &GoldenRun,
        engine: EngineOpts,
    ) -> Result<LatentRunner<'a>, fisec_os::LoadError> {
        let budget = (golden.icount * BUDGET_MULTIPLIER).max(BUDGET_FLOOR);
        let mut p = Process::load(image, client.make())?;
        engine.apply(&mut p);
        p.set_budget(budget);
        let checkpoint = Box::new(p.snapshot());
        Ok(LatentRunner {
            client,
            engine,
            budget,
            text_base: image.text_base,
            text_len: image.text.len(),
            inner: Inner::Snapshot {
                process: Box::new(p),
                checkpoint,
            },
        })
    }

    /// From-scratch-mode runner: clone the image once, boot a fresh
    /// process per run against the patched clone.
    pub fn from_scratch(
        image: &'a Image,
        client: &'a ClientSpec,
        golden: &GoldenRun,
        engine: EngineOpts,
    ) -> LatentRunner<'a> {
        LatentRunner {
            client,
            engine,
            budget: (golden.icount * BUDGET_MULTIPLIER).max(BUDGET_FLOOR),
            text_base: image.text_base,
            text_len: image.text.len(),
            inner: Inner::FromScratch {
                scratch: image.clone(),
            },
        }
    }

    /// Fresh boots this runner performs per run (1 from scratch, 0 from
    /// a snapshot restore) — for the engine's boot/restore accounting.
    pub fn boots_per_run(&self) -> u64 {
        match self.inner {
            Inner::Snapshot { .. } => 0,
            Inner::FromScratch { .. } => 1,
        }
    }

    /// Execute one session with `err` planted and classify it against
    /// `golden`. A run indistinguishable from golden comes back as
    /// [`OutcomeClass::NotManifested`] with `activated == false` ("no
    /// effect" — latent errors have no activation observation).
    ///
    /// # Errors
    /// A message when `err.offset` is outside the text segment — a
    /// campaign bug, reported hard rather than sampled around.
    pub fn run(
        &mut self,
        golden: &GoldenRun,
        err: LatentError,
    ) -> Result<(InjectionRun, RunMeta), String> {
        if err.offset >= self.text_len {
            return Err(format!(
                "latent-error offset {} out of range for text segment of {} bytes",
                err.offset, self.text_len
            ));
        }
        let (stop, client, trace, icount, run_micros) = match &mut self.inner {
            Inner::Snapshot {
                process,
                checkpoint,
            } => {
                process.restore(checkpoint);
                let addr = self.text_base.wrapping_add(err.offset as u32);
                process
                    .machine
                    .mem
                    .poke8(addr, err.corrupted)
                    .expect("text byte is mapped: offset was bounds-checked");
                let start = Instant::now();
                let stop = process.run();
                let run_micros = micros_since(start);
                (
                    stop,
                    process.client_status(),
                    process.trace(),
                    process.icount(),
                    run_micros,
                )
            }
            Inner::FromScratch { scratch } => {
                let orig = scratch.text[err.offset];
                scratch.text[err.offset] = err.corrupted;
                let start = Instant::now();
                let mut p = Process::load(scratch, self.client.make())
                    .map_err(|e| format!("corrupted image failed to load: {e:?}"))?;
                self.engine.apply(&mut p);
                p.set_budget(self.budget);
                let stop = p.run();
                let run_micros = micros_since(start);
                scratch.text[err.offset] = orig;
                (stop, p.client_status(), p.trace(), p.icount(), run_micros)
            }
        };
        let classify_start = Instant::now();
        let mut run = classify_run(golden, stop, client, trace, None);
        // With a latent error there is no breakpoint to observe
        // activation; a run indistinguishable from golden counts as "no
        // effect".
        if run.outcome == OutcomeClass::NotManifested {
            run.activated = false;
        }
        let meta = RunMeta {
            icount,
            run_micros,
            classify_micros: micros_since(classify_start),
        };
        Ok((run, meta))
    }
}

fn micros_since(t: Instant) -> u64 {
    u64::try_from(t.elapsed().as_micros()).unwrap_or(u64::MAX)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::golden_run;
    use fisec_apps::AppSpec;

    #[test]
    fn snapshot_and_from_scratch_agree_bit_for_bit() {
        let app = AppSpec::ftpd();
        let spec = &app.clients[0];
        let golden = golden_run(&app.image, spec).unwrap();
        let mut snap =
            LatentRunner::snapshot(&app.image, spec, &golden, EngineOpts::default()).unwrap();
        let mut fresh =
            LatentRunner::from_scratch(&app.image, spec, &golden, EngineOpts::default());
        // A spread of offsets/bits, including the golden path's first
        // instruction (offset 0) and bytes deep in the image.
        for (offset, bit) in [(0usize, 6u8), (1, 0), (17, 3), (40, 7), (99, 1)] {
            let offset = offset % app.image.text.len();
            let err = LatentError {
                offset,
                corrupted: app.image.text[offset] ^ (1 << bit),
            };
            let (a, am) = snap.run(&golden, err).unwrap();
            let (b, bm) = fresh.run(&golden, err).unwrap();
            assert_eq!(a.outcome, b.outcome, "offset {offset} bit {bit}");
            assert_eq!(a.activated, b.activated, "offset {offset} bit {bit}");
            assert_eq!(a.stop, b.stop, "offset {offset} bit {bit}");
            assert_eq!(am.icount, bm.icount, "offset {offset} bit {bit}");
        }
        assert_eq!(snap.boots_per_run(), 0);
        assert_eq!(fresh.boots_per_run(), 1);
    }

    #[test]
    fn runs_are_independent_of_history() {
        let app = AppSpec::ftpd();
        let spec = &app.clients[0];
        let golden = golden_run(&app.image, spec).unwrap();
        let mut runner =
            LatentRunner::snapshot(&app.image, spec, &golden, EngineOpts::default()).unwrap();
        let err = LatentError {
            offset: 0,
            corrupted: app.image.text[0] ^ 0x40,
        };
        let (first, fm) = runner.run(&golden, err).unwrap();
        // Interleave a different error, then repeat: identical result.
        let other = LatentError {
            offset: 3 % app.image.text.len(),
            corrupted: app.image.text[3 % app.image.text.len()] ^ 0x01,
        };
        runner.run(&golden, other).unwrap();
        let (again, am) = runner.run(&golden, err).unwrap();
        assert_eq!(first.outcome, again.outcome);
        assert_eq!(first.stop, again.stop);
        assert_eq!(fm.icount, am.icount);
    }

    #[test]
    fn out_of_range_offset_is_a_hard_error() {
        let app = AppSpec::ftpd();
        let spec = &app.clients[0];
        let golden = golden_run(&app.image, spec).unwrap();
        let mut runner =
            LatentRunner::from_scratch(&app.image, spec, &golden, EngineOpts::default());
        let err = LatentError {
            offset: usize::MAX,
            corrupted: 0,
        };
        let msg = runner.run(&golden, err).unwrap_err();
        assert!(msg.contains("out of range"), "{msg}");
    }
}
