//! Basic-block engine tests: bit-identical behaviour against the
//! per-step reference interpreter, and the cache-invalidation edges the
//! injection campaign exercises — poking inside a cached block, poking
//! at a block boundary, restores that rewind the executable generation,
//! and self-modifying text.

use fisec_x86::{EdgeKind, FlightTrace, Machine, Memory, Perms, Reg32, Region, RunOutcome};

const TEXT: u32 = 0x1000;

fn machine(text: Vec<u8>) -> Machine {
    let mut mem = Memory::new();
    mem.map(Region::with_data("text", TEXT, text, Perms::RX))
        .unwrap();
    mem.map(Region::zeroed("data", 0x2000, 0x1000, Perms::RW))
        .unwrap();
    mem.map(Region::zeroed("stack", 0x8000, 0x1000, Perms::RW))
        .unwrap();
    let mut m = Machine::new(mem);
    m.cpu.eip = TEXT;
    m.cpu.regs[Reg32::Esp as usize] = 0x9000;
    m
}

/// Run `text` to completion under both engines and assert identical
/// outcome, icount, registers, flags and EIP.
fn assert_engines_agree(text: Vec<u8>, budget: u64) -> RunOutcome {
    let mut blk = machine(text.clone());
    let mut stp = machine(text);
    stp.set_block_engine(false);
    let a = blk.run_until_event(budget);
    let b = stp.run_until_event(budget);
    assert_eq!(a, b, "outcomes diverged");
    assert_eq!(blk.icount, stp.icount, "icount diverged");
    assert_eq!(blk.cpu, stp.cpu, "architectural state diverged");
    a
}

// A loop the cache loves: mov ecx, 5; inc eax; dec ecx; jnz -4; jmp $.
fn counted_loop() -> Vec<u8> {
    vec![0xB9, 5, 0, 0, 0, 0x40, 0x49, 0x75, 0xFC, 0xEB, 0xFE]
}

#[test]
fn engines_agree_on_straight_line_and_loops() {
    assert_engines_agree(vec![0x40; 10], 1000); // falls off text: fault
    assert_engines_agree(counted_loop(), 1000); // budget in jmp $
                                                // div-by-zero fault mid-block: xor edx,edx; xor ecx,ecx; div ecx.
    assert_engines_agree(vec![0x31, 0xD2, 0x31, 0xC9, 0xF7, 0xF1], 1000);
}

#[test]
fn budget_expiry_mid_block_is_exact() {
    // 10 incs; budget 3 expires inside the block.
    for budget in [0, 1, 3, 9, 10] {
        let mut m = machine(vec![0x40; 10]);
        assert_eq!(m.run_until_event(budget), RunOutcome::Budget);
        assert_eq!(m.icount, budget, "block engine must not overrun");
        assert_eq!(m.cpu.regs[Reg32::Eax as usize], budget as u32);
    }
}

#[test]
fn breakpoint_mid_block_pauses_precisely() {
    let mut m = machine(vec![0x40; 10]);
    // Prime the cache with the whole 10-inc block, then arm a breakpoint
    // in the middle: the cached block must not be retired past it.
    assert!(matches!(m.run_until_event(1000), RunOutcome::Fault(_)));
    m.cpu.eip = TEXT;
    m.add_breakpoint(TEXT + 4);
    assert_eq!(m.run_until_event(1000), RunOutcome::Breakpoint(TEXT + 4));
    assert_eq!(m.cpu.eip, TEXT + 4);
    assert_eq!(m.cpu.regs[Reg32::Eax as usize], 10 + 4);
}

#[test]
fn poke_inside_cached_block_invalidates_it() {
    let mut m = machine(counted_loop());
    assert_eq!(m.run_until_event(100), RunOutcome::Budget);
    let before = m.block_stats();
    assert!(before.hits > 0, "loop body must be served from cache");
    // Poke the `inc eax` (0x40 at TEXT+5) into `inc ecx` (0x41): the
    // covering block must be rebuilt from the new byte.
    m.mem.poke8(TEXT + 5, 0x41).unwrap();
    m.cpu.eip = TEXT;
    m.cpu.regs = [0; 8];
    assert_eq!(m.run_until_event(100), RunOutcome::Budget);
    let after = m.block_stats();
    assert!(
        after.invalidated > before.invalidated,
        "poked block must be dropped: {before:?} -> {after:?}"
    );
    // ecx ends at 0 either way (loop counter), but eax stayed 0 and the
    // increments landed in ecx's history — observable via eax.
    assert_eq!(m.cpu.regs[Reg32::Eax as usize], 0);
}

#[test]
fn poke_at_block_boundary_spares_neighbours() {
    // Two blocks: [mov ecx,5 / inc / dec / jnz] and [jmp $] at TEXT+9.
    let mut m = machine(counted_loop());
    assert_eq!(m.run_until_event(100), RunOutcome::Budget);
    let before = m.block_stats();
    // Poke the first byte of the `jmp $` block — the boundary byte. The
    // loop block ends at TEXT+9 (half-open), so it must survive.
    m.mem.poke8(TEXT + 9, 0xEB).unwrap(); // same byte value: still a write
    m.cpu.eip = TEXT;
    assert_eq!(m.run_until_event(100), RunOutcome::Budget);
    let after = m.block_stats();
    assert_eq!(
        after.invalidated,
        before.invalidated + 1,
        "exactly the boundary block is dropped: {before:?} -> {after:?}"
    );
}

#[test]
fn unchanged_restore_keeps_the_caches() {
    let mut m = machine(counted_loop());
    let snap = m.snapshot();
    assert_eq!(m.run_until_event(100), RunOutcome::Budget);
    let before = m.block_stats();
    assert!(before.cached > 0);
    m.restore(&snap);
    assert_eq!(
        m.block_stats().invalidated,
        before.invalidated,
        "a restore with unchanged text must not invalidate anything"
    );
    assert_eq!(m.run_until_event(100), RunOutcome::Budget);
    assert!(m.block_stats().hits > before.hits, "cache survived rewind");
}

#[test]
fn restore_rewinding_generation_invalidates_only_poked_blocks() {
    let mut m = machine(counted_loop());
    let snap = m.snapshot();
    assert_eq!(m.run_until_event(100), RunOutcome::Budget);
    let cached = m.block_stats().cached;
    assert!(cached >= 2, "loop and jmp blocks cached");

    // Injection-shaped cycle: restore, poke one byte, run, repeat.
    // Only blocks covering the poked byte may be dropped per cycle.
    let inv0 = m.block_stats().invalidated;
    for bit in 0..4u8 {
        m.restore(&snap);
        m.mem.poke8(TEXT + 5, 0x40 ^ (1 << bit)).unwrap();
        assert_eq!(m.run_until_event(100), RunOutcome::Budget);
    }
    m.restore(&snap); // final rewind reverts the last poke
    let s = m.block_stats();
    // Two blocks cover the poked byte (entries TEXT and TEXT+5), and
    // each poke/revert pair can drop them at most once each — while the
    // jmp-$ block must keep its slot across every cycle.
    assert!(
        s.invalidated - inv0 <= 12,
        "restore must invalidate per-byte, not wholesale: {s:?}"
    );
    assert!(s.hits > 0);

    // And the rewound machine still runs the pristine program.
    assert_eq!(m.run_until_event(100), RunOutcome::Budget);
    assert_eq!(m.cpu.regs[Reg32::Ecx as usize], 0);
}

#[test]
fn self_modifying_rwx_text_agrees_with_stepwise() {
    // mov byte [0x1008], 0x41 patches the later `inc eax` into `inc
    // ecx` while the block containing both is executing.
    // 0x1000: C6 05 08 10 00 00 41   mov byte [0x1008], 0x41
    // 0x1007: 90                     nop
    // 0x1008: 40                     inc eax  <- patched before it retires
    // 0x1009: EB FE                  jmp $
    let text = vec![
        0xC6, 0x05, 0x08, 0x10, 0x00, 0x00, 0x41, 0x90, 0x40, 0xEB, 0xFE,
    ];
    let mut mem = Memory::new();
    mem.map(Region::with_data("text", TEXT, text.clone(), Perms::RWX))
        .unwrap();
    let mut blk = Machine::new(mem.clone());
    blk.cpu.eip = TEXT;
    let mut stp = Machine::new(mem);
    stp.cpu.eip = TEXT;
    stp.set_block_engine(false);
    assert_eq!(blk.run_until_event(50), stp.run_until_event(50));
    assert_eq!(blk.icount, stp.icount);
    assert_eq!(blk.cpu, stp.cpu);
    assert_eq!(blk.cpu.regs[Reg32::Ecx as usize], 1, "patched inc ran");
    assert_eq!(blk.cpu.regs[Reg32::Eax as usize], 0);
}

#[test]
fn coverage_and_trace_identical_across_engines() {
    let mut blk = machine(counted_loop());
    let mut stp = machine(counted_loop());
    stp.set_block_engine(false);
    for m in [&mut blk, &mut stp] {
        m.enable_coverage();
        m.enable_eip_trace(4);
    }
    assert_eq!(blk.run_until_event(200), stp.run_until_event(200));
    assert_eq!(blk.coverage(), stp.coverage());
    assert_eq!(blk.eip_trace(), stp.eip_trace());
    // Out-of-bitmap EIPs (no exec region below TEXT) spill correctly:
    // the coverage set is exactly the executed addresses.
    let cov = blk.coverage().unwrap();
    assert!(cov.contains(&TEXT) && cov.contains(&(TEXT + 9)));
    assert!(!cov.contains(&(TEXT + 1)));
}

#[test]
fn toggling_engine_mid_execution_is_safe() {
    let mut m = machine(counted_loop());
    assert_eq!(m.run_until_event(7), RunOutcome::Budget);
    m.set_block_engine(false);
    assert_eq!(m.run_until_event(7), RunOutcome::Budget);
    m.set_block_engine(true);
    assert_eq!(m.run_until_event(100), RunOutcome::Budget);
    let mut reference = machine(counted_loop());
    reference.set_block_engine(false);
    assert_eq!(reference.run_until_event(114), RunOutcome::Budget);
    assert_eq!(m.icount, reference.icount);
    assert_eq!(m.cpu, reference.cpu);
}

/// Run `text` under both engines with the flight recorder on and
/// assert the recorded traces are bit-identical; returns one of them.
fn assert_flight_traces_agree(text: Vec<u8>, budget: u64) -> FlightTrace {
    let mut blk = machine(text.clone());
    let mut stp = machine(text);
    stp.set_block_engine(false);
    blk.enable_flight_recorder(1 << 16);
    stp.enable_flight_recorder(1 << 16);
    assert_eq!(blk.run_until_event(budget), stp.run_until_event(budget));
    let a = blk.take_flight_trace().unwrap();
    let b = stp.take_flight_trace().unwrap();
    assert_eq!(a, b, "flight traces diverged between engines");
    a
}

#[test]
fn flight_trace_identical_across_engines() {
    // Branches taken and not taken, through a resident loop.
    let t = assert_flight_traces_agree(counted_loop(), 50);
    assert!(t
        .edges
        .iter()
        .any(|e| e.kind == EdgeKind::BranchTaken && e.to == TEXT + 5));
    assert!(t.edges.iter().any(|e| e.kind == EdgeKind::BranchNotTaken));
    // Exec fault mid-block: xor edx,edx; xor ecx,ecx; div ecx.
    let t = assert_flight_traces_agree(vec![0x31, 0xD2, 0x31, 0xC9, 0xF7, 0xF1], 50);
    assert_eq!(t.edges.last().unwrap().kind, EdgeKind::Fault);
    assert_eq!(t.edges.last().unwrap().from, TEXT + 4);
    assert_eq!(t.edges.last().unwrap().icount, 3, "div retires then faults");
    // Fetch fault: straight-line code falls off the text region.
    let t = assert_flight_traces_agree(vec![0x40; 4], 50);
    assert_eq!(
        t.edges.last().unwrap(),
        &fisec_x86::Edge {
            from: TEXT + 4,
            to: 0,
            icount: 4,
            kind: EdgeKind::Fault
        }
    );
}

#[test]
fn flight_trace_records_calls_rets_and_syscalls() {
    // mov ecx,3; call f; jmp $; nop; f: inc eax; dec ecx; jnz f; ret
    let text = vec![
        0xB9, 0x03, 0x00, 0x00, 0x00, // 0x1000 mov ecx,3
        0xE8, 0x03, 0x00, 0x00, 0x00, // 0x1005 call 0x100D
        0xEB, 0xFE, // 0x100A jmp $
        0x90, // 0x100C nop
        0x40, // 0x100D inc eax
        0x49, // 0x100E dec ecx
        0x75, 0xFC, // 0x100F jnz 0x100D
        0xC3, // 0x1011 ret
    ];
    let t = assert_flight_traces_agree(text, 20);
    let kinds: Vec<EdgeKind> = t.edges.iter().map(|e| e.kind).collect();
    assert_eq!(kinds[0], EdgeKind::Call);
    assert_eq!(t.edges[0].to, TEXT + 0xD);
    assert!(kinds.contains(&EdgeKind::Ret));
    let ret = t.edges.iter().find(|e| e.kind == EdgeKind::Ret).unwrap();
    assert_eq!(ret.to, TEXT + 0xA, "ret returns past the call");
    // A syscall edge carries EAX (the syscall number) as its target.
    let t = assert_flight_traces_agree(vec![0xB8, 0x04, 0x00, 0x00, 0x00, 0xCD, 0x80], 20);
    let sys = t.edges.last().unwrap();
    assert_eq!(sys.kind, EdgeKind::Syscall);
    assert_eq!((sys.from, sys.to, sys.icount), (TEXT + 5, 4, 2));
}

#[test]
fn flight_recorder_bound_and_restore_semantics() {
    let mut m = machine(counted_loop());
    m.enable_flight_recorder(2);
    assert_eq!(m.run_until_event(100), RunOutcome::Budget);
    let t = m.take_flight_trace().unwrap();
    assert_eq!(t.edges.len(), 2, "prefix window holds the bound");
    assert!(t.truncated());
    assert!(t.total_edges > 2);
    assert_eq!(t.retired(), 100);
    assert!(m.take_flight_trace().is_none(), "taking the trace disarms");

    // A restore drops any active recording: the recorder is per-run
    // instrumentation, re-armed by the injector after each rewind.
    let mut m = machine(counted_loop());
    let snap = m.snapshot();
    m.enable_flight_recorder(16);
    assert_eq!(m.run_until_event(10), RunOutcome::Budget);
    m.restore(&snap);
    assert!(!m.flight_recorder_enabled());
    assert!(m.take_flight_trace().is_none());
}

#[test]
fn rdtsc_reads_exact_live_icount_in_block_mode() {
    // inc eax; rdtsc; jmp $ — rdtsc must observe icount == 2 (itself
    // included), not a block-deferred value.
    let mut m = machine(vec![0x40, 0x0F, 0x31, 0xEB, 0xFE]);
    assert_eq!(m.run_until_event(10), RunOutcome::Budget);
    let mut s = machine(vec![0x40, 0x0F, 0x31, 0xEB, 0xFE]);
    s.set_block_engine(false);
    assert_eq!(s.run_until_event(10), RunOutcome::Budget);
    assert_eq!(
        m.cpu.regs[Reg32::Eax as usize],
        s.cpu.regs[Reg32::Eax as usize]
    );
    assert_eq!(m.cpu.regs[Reg32::Eax as usize], 2);
}
