//! Property tests for the §6 encoding scheme.

use fisec_encoding::{hamming, map_0f_second, map_1byte, remap_flip, ByteCtx, EncodingScheme};
use proptest::prelude::*;

proptest! {
    /// Injection under either scheme is an involution per (byte, bit):
    /// flipping the same bit twice restores the original byte. For the
    /// new encoding this is the composition ι∘flip∘ι applied twice.
    #[test]
    fn remap_flip_is_involution(byte in any::<u8>(), bit in 0u8..8) {
        for scheme in [EncodingScheme::Baseline, EncodingScheme::NewEncoding] {
            for ctx in [ByteCtx::OneByteOpcode, ByteCtx::SecondOpcodeByte, ByteCtx::Other] {
                let once = remap_flip(byte, bit, ctx, scheme);
                let twice = remap_flip(once, bit, ctx, scheme);
                prop_assert_eq!(twice, byte, "scheme {:?} ctx {:?}", scheme, ctx);
            }
        }
    }

    /// The baseline flip changes exactly one bit; the new-encoding flip
    /// changes the *new-space* byte by one bit (which may be several bits
    /// in old space).
    #[test]
    fn flip_distances(byte in any::<u8>(), bit in 0u8..8) {
        let base = remap_flip(byte, bit, ByteCtx::OneByteOpcode, EncodingScheme::Baseline);
        prop_assert_eq!(hamming(byte, base), 1);
        let new = remap_flip(byte, bit, ByteCtx::OneByteOpcode, EncodingScheme::NewEncoding);
        prop_assert_eq!(hamming(map_1byte(byte), map_1byte(new)), 1);
    }

    /// The mapping preserves distinctness (it is a bijection).
    #[test]
    fn mapping_is_injective(a in any::<u8>(), b in any::<u8>()) {
        if a != b {
            prop_assert_ne!(map_1byte(a), map_1byte(b));
            prop_assert_ne!(map_0f_second(a), map_0f_second(b));
        }
    }

    /// Headline security property, exhaustively by proptest over the
    /// branch block: a single-bit error under the new encoding never
    /// converts one conditional branch into a *different* one.
    #[test]
    fn no_branch_to_branch_transitions(delta in 0u8..16, bit in 0u8..8) {
        let b2 = 0x70 + delta;
        let r2 = remap_flip(b2, bit, ByteCtx::OneByteOpcode, EncodingScheme::NewEncoding);
        if (0x70..=0x7F).contains(&r2) {
            prop_assert_eq!(r2, b2);
        }
        let b6 = 0x80 + delta;
        let r6 = remap_flip(b6, bit, ByteCtx::SecondOpcodeByte, EncodingScheme::NewEncoding);
        if (0x80..=0x8F).contains(&r6) {
            prop_assert_eq!(r6, b6);
        }
    }

    /// Operand bytes are untouched by the mapping under both schemes.
    #[test]
    fn operand_ctx_is_plain_flip(byte in any::<u8>(), bit in 0u8..8) {
        let a = remap_flip(byte, bit, ByteCtx::Other, EncodingScheme::Baseline);
        let b = remap_flip(byte, bit, ByteCtx::Other, EncodingScheme::NewEncoding);
        prop_assert_eq!(a, b);
        prop_assert_eq!(a, byte ^ (1 << bit));
    }
}
