//! Injection-target enumeration: every bit of every control-transfer
//! instruction in the selected functions ("selective exhaustive
//! injection", paper §4).

use crate::location::ErrorLocation;
use fisec_asm::Image;

/// One (instruction, byte, bit) injection coordinate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InjectionTarget {
    /// Address of the targeted instruction.
    pub addr: u32,
    /// Encoded length of the instruction.
    pub inst_len: u8,
    /// Byte within the instruction (0-based).
    pub byte_index: u8,
    /// Bit within the byte (0 = least significant).
    pub bit: u8,
    /// First byte of the instruction (distinguishes `0x0F` escapes for
    /// the §6.2 mapping).
    pub first_byte: u8,
    /// Location class for Tables 2/3.
    pub location: ErrorLocation,
    /// True when the instruction is a conditional branch.
    pub is_cond_branch: bool,
}

/// The target set for one application: all bits of all control-transfer
/// instructions in the selected functions.
#[derive(Debug, Clone, Default)]
pub struct TargetSet {
    /// Flattened (instruction × byte × bit) coordinates.
    pub targets: Vec<InjectionTarget>,
    /// Number of distinct instructions covered.
    pub instructions: usize,
    /// Number of conditional branches among them.
    pub cond_branches: usize,
}

impl TargetSet {
    /// Total number of injection runs this set implies (= bits).
    pub fn runs(&self) -> usize {
        self.targets.len()
    }
}

/// Enumerate targets over the named functions of `image`.
///
/// `cond_branches_only` restricts to `Jcc` (the paper's headline set);
/// otherwise all control-transfer instructions are included and the
/// non-`Jcc` ones classify as MISC (see DESIGN.md).
pub fn enumerate_targets(image: &Image, funcs: &[&str], cond_branches_only: bool) -> TargetSet {
    let mut set = TargetSet::default();
    for name in funcs {
        let Some(f) = image.func(name) else { continue };
        let f = f.clone();
        for (addr, inst) in image.decode_func(&f) {
            if !inst.is_branch() {
                continue;
            }
            if cond_branches_only && !inst.is_cond_branch() {
                continue;
            }
            set.instructions += 1;
            if inst.is_cond_branch() {
                set.cond_branches += 1;
            }
            let off = (addr - image.text_base) as usize;
            let first_byte = image.text[off];
            for byte_index in 0..inst.len {
                for bit in 0..8u8 {
                    set.targets.push(InjectionTarget {
                        addr,
                        inst_len: inst.len,
                        byte_index,
                        bit,
                        first_byte,
                        location: ErrorLocation::classify(&inst, byte_index),
                        is_cond_branch: inst.is_cond_branch(),
                    });
                }
            }
        }
    }
    set
}

#[cfg(test)]
mod tests {
    use super::*;
    use fisec_apps::{AppSpec, FTPD_AUTH_FUNCS, SSHD_AUTH_FUNCS};

    #[test]
    fn ftpd_target_set_is_substantial() {
        let app = AppSpec::ftpd();
        let set = enumerate_targets(&app.image, &FTPD_AUTH_FUNCS, false);
        assert!(set.instructions >= 20, "instructions {}", set.instructions);
        assert!(set.cond_branches >= 10, "branches {}", set.cond_branches);
        // Every instruction contributes 8 bits per byte.
        assert_eq!(set.runs() % 8, 0);
        assert!(set.runs() > 500, "runs {}", set.runs());
    }

    #[test]
    fn sshd_target_set_is_substantial() {
        let app = AppSpec::sshd();
        let set = enumerate_targets(&app.image, &SSHD_AUTH_FUNCS, false);
        assert!(set.cond_branches >= 15, "branches {}", set.cond_branches);
        assert!(set.runs() > 800, "runs {}", set.runs());
    }

    #[test]
    fn cond_only_filter() {
        let app = AppSpec::ftpd();
        let all = enumerate_targets(&app.image, &FTPD_AUTH_FUNCS, false);
        let cond = enumerate_targets(&app.image, &FTPD_AUTH_FUNCS, true);
        assert!(cond.runs() < all.runs());
        assert!(cond.targets.iter().all(|t| t.is_cond_branch));
        assert_eq!(cond.instructions, cond.cond_branches);
    }

    #[test]
    fn missing_function_yields_empty() {
        let app = AppSpec::ftpd();
        let set = enumerate_targets(&app.image, &["not_a_function"], false);
        assert_eq!(set.runs(), 0);
    }

    #[test]
    fn bits_cover_whole_instruction() {
        let app = AppSpec::ftpd();
        let set = enumerate_targets(&app.image, &["pass"], false);
        // Group by instruction address: each must have len*8 targets.
        let mut by_addr: std::collections::HashMap<u32, Vec<&InjectionTarget>> =
            std::collections::HashMap::new();
        for t in &set.targets {
            by_addr.entry(t.addr).or_default().push(t);
        }
        for (addr, ts) in by_addr {
            let len = ts[0].inst_len as usize;
            assert_eq!(ts.len(), len * 8, "addr {addr:#x}");
        }
    }

    #[test]
    fn mixed_2byte_and_6byte_branches_present() {
        // The compiled servers must exercise both encodings or Tables 2/3
        // degenerate.
        let app = AppSpec::ftpd();
        let set = enumerate_targets(&app.image, &FTPD_AUTH_FUNCS, true);
        let has2 = set.targets.iter().any(|t| t.inst_len == 2);
        let has6 = set.targets.iter().any(|t| t.inst_len == 6);
        assert!(has2, "no 2-byte branches in ftpd auth functions");
        assert!(has6, "no 6-byte branches in ftpd auth functions");
    }
}
