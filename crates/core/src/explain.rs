//! `fisec explain`: an annotated timeline of one injection.
//!
//! Re-runs a single (address, byte, bit) experiment with the flight
//! recorder on, diffs the faulty run against the golden continuation
//! and renders a disassembly-annotated timeline around the first
//! divergent control-flow edge — the per-run narrative behind the
//! paper's §5.4 crash-latency and fail-silence discussion.

use fisec_apps::AppSpec;
use fisec_asm::Image;
use fisec_encoding::{remap_flip, ByteCtx, EncodingScheme};
use fisec_inject::{
    enumerate_targets, golden_run_opts, run_injection_recorded, DivergenceReport, EngineOpts,
    InjectionTarget,
};
use fisec_os::sysno;
use fisec_x86::recorder::Edge;
use fisec_x86::EdgeKind;
use std::fmt::Write as _;

/// Edges of context shown on each side of the divergence point.
const CONTEXT: usize = 8;

/// Explain one injection: run it recorded and render the timeline.
///
/// `client` is 1-based (the CLI's `--client`).
///
/// # Errors
/// A message when the client is out of range, no enumerated target
/// matches `(addr, byte_index, bit)`, or the image fails to load.
pub fn explain(
    app: &AppSpec,
    client: usize,
    addr: u32,
    byte_index: u8,
    bit: u8,
    scheme: EncodingScheme,
) -> Result<String, String> {
    let spec = app.clients.get(client.wrapping_sub(1)).ok_or_else(|| {
        format!(
            "--client {client} out of range (valid: 1..={})",
            app.clients.len()
        )
    })?;
    let set = enumerate_targets(&app.image, &app.auth_funcs, false);
    let target = *set
        .targets
        .iter()
        .find(|t| t.addr == addr && t.byte_index == byte_index && t.bit == bit)
        .ok_or_else(|| {
            format!(
                "no injection target at {addr:#010x} byte {byte_index} bit {bit} \
                 (see `fisec targets` / `fisec disasm` for the enumerated set)"
            )
        })?;
    let engine = EngineOpts {
        flight_recorder: true,
        ..EngineOpts::default()
    };
    let golden = golden_run_opts(&app.image, spec, engine).map_err(|e| e.to_string())?;
    let (run, _, _, rep, _, _, _) =
        run_injection_recorded(&app.image, spec, &golden, &target, scheme, engine)
            .map_err(|e| e.to_string())?;

    let mut out = String::new();
    let _ = writeln!(
        out,
        "== fisec explain: {} {} @ {:#010x} byte {} bit {} [{}] ==",
        app.name, spec.name, addr, byte_index, bit, scheme
    );
    let _ = writeln!(
        out,
        "flip: {}: {}  ->  {}",
        sym(&app.image, addr),
        disasm(&app.image, &target, scheme, addr, false),
        disasm(&app.image, &target, scheme, addr, true)
    );
    let _ = writeln!(
        out,
        "outcome: {}  stop: {}  client: {:?}{}",
        run.outcome.abbrev(),
        run.stop,
        run.client,
        run.crash_latency
            .map_or_else(String::new, |l| format!("  crash latency: {l}"))
    );
    let Some(rep) = rep else {
        let _ = writeln!(
            out,
            "the golden run never reaches this instruction: the flip cannot activate \
             and the run is identical to golden"
        );
        return Ok(out);
    };
    render_timeline(&mut out, &app.image, &target, scheme, &rep);
    let _ = write!(out, "{rep}");
    Ok(out)
}

/// The annotated edge window around the first divergence.
fn render_timeline(
    out: &mut String,
    image: &Image,
    target: &InjectionTarget,
    scheme: EncodingScheme,
    rep: &DivergenceReport,
) {
    let edges = &rep.faulty.edges;
    let n = edges.len();
    let (lo, hi) = match rep.first_divergence {
        Some(i) => (i.saturating_sub(CONTEXT), (i + CONTEXT + 1).min(n)),
        None => (0, n.min(2 * CONTEXT + 1)),
    };
    let _ = writeln!(
        out,
        "timeline: {} edges recorded{} (= shared with golden, ! first divergent, > corrupted)",
        rep.faulty.total_edges,
        if rep.faulty.truncated() {
            ", window truncated"
        } else {
            ""
        }
    );
    if lo > 0 {
        let _ = writeln!(out, "  ... {lo} earlier edges shared with golden ...");
    }
    for (i, e) in edges.iter().enumerate().take(hi).skip(lo) {
        let marker = match rep.first_divergence {
            Some(d) if i == d => '!',
            Some(d) if i > d => '>',
            _ => '=',
        };
        let _ = writeln!(
            out,
            "  {marker} +{:<8} {:08x} {:<22} {:<30} {}",
            e.icount.saturating_sub(rep.faulty.start_icount),
            e.from,
            sym(image, e.from),
            disasm(image, target, scheme, e.from, true),
            describe_to(image, e)
        );
        if rep.first_divergence == Some(i) {
            match rep.golden.edges.get(i) {
                Some(g) => {
                    let _ = writeln!(
                        out,
                        "    golden instead: {:08x} {:<22} {}",
                        g.from,
                        sym(image, g.from),
                        describe_to(image, g)
                    );
                }
                None => {
                    let _ = writeln!(out, "    golden had already stopped here");
                }
            }
        }
    }
    if hi < n {
        let _ = writeln!(out, "  ... {} later edges ...", n - hi);
    }
    if rep.first_divergence.is_some_and(|d| d >= n) {
        // The faulty stream is a strict prefix of golden's.
        if let Some(g) = rep.golden.edges.get(n) {
            let _ = writeln!(
                out,
                "  ! faulty run stopped; golden instead: {:08x} {:<22} {}",
                g.from,
                sym(image, g.from),
                describe_to(image, g)
            );
        }
    }
}

/// `func+0xoff` for a text address, or the raw hex outside any symbol.
fn sym(image: &Image, addr: u32) -> String {
    image
        .symbols
        .funcs
        .iter()
        .find(|f| (f.start..f.end).contains(&addr))
        .map_or_else(
            || format!("{addr:#010x}"),
            |f| format!("{}+{:#x}", f.name, addr - f.start),
        )
}

/// One edge's destination, in the kind's own terms.
fn describe_to(image: &Image, e: &Edge) -> String {
    match e.kind {
        EdgeKind::Syscall => {
            let name = match e.to {
                sysno::EXIT => " exit",
                sysno::READ => " read",
                sysno::WRITE => " write",
                _ => "",
            };
            format!("syscall({}{name})", e.to)
        }
        EdgeKind::Fault => "faults".to_string(),
        _ => format!("{} -> {:08x} {}", e.kind.label(), e.to, sym(image, e.to)),
    }
}

/// Disassemble the instruction at `addr` as the faulty run saw it:
/// with the bit flip applied when `addr` is the injected instruction
/// (and `flipped` asks for the corrupted view).
fn disasm(
    image: &Image,
    target: &InjectionTarget,
    scheme: EncodingScheme,
    addr: u32,
    flipped: bool,
) -> String {
    let Some(off) = addr
        .checked_sub(image.text_base)
        .map(|o| o as usize)
        .filter(|&o| o < image.text.len())
    else {
        return "<outside text>".to_string();
    };
    let end = (off + 16).min(image.text.len());
    let mut bytes = image.text[off..end].to_vec();
    if flipped && addr == target.addr && (target.byte_index as usize) < bytes.len() {
        let ctx = if target.byte_index == 0 {
            ByteCtx::OneByteOpcode
        } else if target.byte_index == 1 && target.first_byte == 0x0F {
            ByteCtx::SecondOpcodeByte
        } else {
            ByteCtx::Other
        };
        let i = target.byte_index as usize;
        bytes[i] = remap_flip(bytes[i], target.bit, ctx, scheme);
    }
    let inst = fisec_x86::decode(&bytes);
    fisec_x86::fmt_att(&inst, addr)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fisec_inject::{golden_run, run_injection, OutcomeClass};

    /// First opcode-byte flip with the wanted outcome on ftpd Client1.
    fn find_target(outcome: OutcomeClass) -> InjectionTarget {
        let app = AppSpec::ftpd();
        let spec = &app.clients[0];
        let golden = golden_run(&app.image, spec).unwrap();
        let set = enumerate_targets(&app.image, &app.auth_funcs, false);
        for t in set.targets.iter().filter(|t| t.byte_index == 0) {
            let r = run_injection(&app.image, spec, &golden, t, EncodingScheme::Baseline).unwrap();
            if r.outcome == outcome {
                return *t;
            }
        }
        panic!("no {outcome:?} opcode flip found");
    }

    #[test]
    fn explains_a_breakin_with_divergent_timeline() {
        let app = AppSpec::ftpd();
        let t = find_target(OutcomeClass::Breakin);
        let s = explain(
            &app,
            1,
            t.addr,
            t.byte_index,
            t.bit,
            EncodingScheme::Baseline,
        )
        .unwrap();
        assert!(s.contains("outcome: BRK"), "{s}");
        assert!(s.contains("flip: "), "{s}");
        assert!(s.contains("timeline: "), "{s}");
        // The corrupted path diverges and the golden alternative shows.
        assert!(s.contains("first divergent edge"), "{s}");
        assert!(s.contains("golden"), "{s}");
        // Addresses resolve to auth-path symbols.
        assert!(s.contains('+'), "{s}");
    }

    #[test]
    fn explains_a_never_activated_target() {
        // An enumerated instruction the denied Client1's golden run
        // never executes (found via the coverage set).
        let app = AppSpec::ftpd();
        let (_, cov) = fisec_inject::golden_run_with_coverage_opts(
            &app.image,
            &app.clients[0],
            EngineOpts::default(),
        )
        .unwrap();
        let set = enumerate_targets(&app.image, &app.auth_funcs, false);
        let t = *set
            .targets
            .iter()
            .find(|t| !cov.contains(&t.addr))
            .expect("some enumerated instruction is never executed");
        let s = explain(
            &app,
            1,
            t.addr,
            t.byte_index,
            t.bit,
            EncodingScheme::Baseline,
        )
        .unwrap();
        assert!(s.contains("outcome: NA"), "{s}");
        assert!(s.contains("never reaches"), "{s}");
        assert!(!s.contains("timeline"), "{s}");
    }

    #[test]
    fn rejects_unknown_target_and_client() {
        let app = AppSpec::ftpd();
        let e = explain(&app, 1, 0xdead_beef, 0, 0, EncodingScheme::Baseline).unwrap_err();
        assert!(e.contains("no injection target"), "{e}");
        let t = enumerate_targets(&app.image, &app.auth_funcs, false).targets[0];
        let e = explain(
            &app,
            9,
            t.addr,
            t.byte_index,
            t.bit,
            EncodingScheme::Baseline,
        )
        .unwrap_err();
        assert!(e.contains("out of range"), "{e}");
    }
}
