//! The sshd-like target application (ssh-1.2.30 analogue).
//!
//! Authentication lives in `do_authentication`, `auth_rhosts` and
//! `auth_password` — the three functions the paper injected. The
//! `do_authentication` loop reproduces the structure of the paper's
//! Figure 2: `if (auth_rhosts(...)) { authenticated = 1; break; }`, with
//! multiple entry points (none/rhosts/password) into the authenticated
//! state. `packet_read` reproduces Figure 3's `read(conn, buf, 8192)`
//! with the `push $0x2000` immediate.

use crate::clients::LineBuf;
use fisec_asm::Image;
use fisec_cc::{build_image, BuildError};
use fisec_net::{ClientDriver, ClientStatus};

/// The functions the paper injects for sshd.
pub const SSHD_AUTH_FUNCS: [&str; 3] = ["do_authentication", "auth_rhosts", "auth_password"];

/// mini-C source of the server.
pub const SSHD_SRC: &str = r#"
/* fisec sshd: an ssh-1.2.30-like authentication front end. */

char version_banner[] = "SSH-1.99-fisec_sshd_1.2.30\r\n";

char acct0_name[] = "alice";
char acct0_pass[] = "wonderland";
char acct1_name[] = "bob";
char acct1_pass[] = "builder";

/* .rhosts: operator@gateway.trusted.net may log in without a password */
char trusted_host[] = "gateway.trusted.net";
char rhosts_user[] = "operator";

/* authorized RSA key fingerprints (user:fingerprint) */
char rsa_user0[] = "operator";
char rsa_key0[] = "fp:9a31c04d";

/* config flags: optional mechanisms compiled in but disabled here */
int enable_kerberos;
int permit_empty_passwords;

/* mechanism switches (sshd_config-style); the entry-points ablation
   zeroes all but password auth in the data segment */
int cfg_auth_none = 1;
int cfg_auth_rhosts = 1;
int cfg_auth_rsa = 1;

char user_name[64];
int user_valid;
char expected_hash[24];
char audit_buf[128];

int read_line(char *buf, int max) {
    int n;
    int i;
    char c[4];
    i = 0;
    while (i < max) {
        n = read(0, c, 1);
        if (n <= 0) {
            return -1;
        }
        if (c[0] == '\n') {
            break;
        }
        if (c[0] != '\r') {
            buf[i] = c[0];
            i++;
        }
    }
    buf[i] = 0;
    return i;
}

/* packet_read(): the paper's Figure 3 — reads into an 8192-byte stack
   buffer; the 0x2000 immediate is pushed as the read length. */
int packet_read(char *out, int outmax) {
    char buf[8192];
    int n;
    int i;
    n = read(0, buf, 8192);
    if (n <= 0) {
        return -1;
    }
    i = 0;
    while (i < n && i < outmax - 1 && buf[i] != '\n') {
        if (buf[i] != '\r') {
            out[i] = buf[i];
        }
        i++;
    }
    /* strip a trailing CR kept by the copy above */
    if (i > 0 && out[i - 1] == '\r') {
        i--;
    }
    out[i] = 0;
    return i;
}

char *lookup_password(char *name) {
    if (strcmp(name, acct0_name) == 0) {
        return acct0_pass;
    }
    if (strcmp(name, acct1_name) == 0) {
        return acct1_pass;
    }
    return 0;
}

void setup_user(char *name) {
    char *pw;
    user_valid = 0;
    strncpy_safe(user_name, name, 41);
    pw = lookup_password(name);
    if (pw) {
        crypt_hash(pw, expected_hash);
        user_valid = 1;
    } else {
        expected_hash[0] = '*';
        expected_hash[1] = 0;
    }
}

/* auth_rhosts(): paper injection target. Returns non-zero when the
   remote user is awarded access (Figure 2's callee). */
int auth_rhosts(char *host) {
    if (user_valid == 0) {
        return 0;
    }
    if (strcmp(host, trusted_host) != 0) {
        return 0;
    }
    if (strcmp(user_name, rhosts_user) != 0) {
        return 0;
    }
    return 1;
}

/* auth_rsa(): challenge-response against the authorized key table.
   Simplified: the client presents "keyowner fingerprint"; access needs a
   matching table row for the *current* user. */
int auth_rsa(char *cred) {
    char keyuser[32];
    int i;
    i = 0;
    while (cred[i] && cred[i] != ' ' && i < 31) {
        keyuser[i] = cred[i];
        i++;
    }
    keyuser[i] = 0;
    if (user_valid == 0) {
        return 0;
    }
    if (strcmp(keyuser, user_name) != 0) {
        return 0;
    }
    if (strcmp(user_name, rsa_user0) != 0) {
        return 0;
    }
    if (cred[i] != ' ') {
        return 0;
    }
    if (strcmp(cred + i + 1, rsa_key0) != 0) {
        return 0;
    }
    return 1;
}

/* auth_password(): paper injection target. */
int auth_password(char *guess) {
    char xpasswd[24];
    if (user_valid == 0) {
        return 0;
    }
    if (strlen(guess) == 0) {
        if (permit_empty_passwords == 0) {
            return 0;
        }
        crypt_hash("", xpasswd);
        if (strcmp(xpasswd, expected_hash) == 0) {
            return 1;
        }
        return 0;
    }
    if (enable_kerberos) {
        /* Kerberos path — compiled in, disabled in this configuration */
        char kticket[64];
        int klen;
        klen = strlen(guess);
        if (klen > 8 && strncmp(guess, "krbtgt/", 7) == 0) {
            strncpy_safe(kticket, guess + 7, 57);
            crypt_hash(kticket, xpasswd);
            if (strcmp(xpasswd, expected_hash) == 0) {
                return 1;
            }
            return 0;
        }
    }
    crypt_hash(guess, xpasswd);
    if (strcmp(xpasswd, expected_hash) == 0) {
        return 1;
    }
    return 0;
}

/* split "METHOD arg..." into its parts (packet-parsing helper) */
void split_request(char *line, char *method, char *arg) {
    int i;
    int j;
    i = 0;
    while (line[i] && line[i] != ' ' && i < 31) {
        method[i] = line[i];
        i++;
    }
    method[i] = 0;
    j = 0;
    if (line[i] == ' ') {
        i++;
        while (line[i] && j < 255) {
            arg[j] = line[i];
            i++;
            j++;
        }
    }
    arg[j] = 0;
}

/* do_authentication(): paper injection target. Combination of
   mechanisms; any success sets authenticated and breaks — the paper's
   "multiple points of entry". */
int do_authentication() {
    char line[512];
    char method[32];
    char empty_hash[24];
    int authenticated;
    int attempts;
    int n;
    char arg[256];
    authenticated = 0;
    attempts = 0;
    while (1) {
        n = read_line(line, 511);
        if (n < 0) {
            exit(1);
        }
        split_request(line, method, arg);
        if (strcmp(method, "AUTH-NONE") == 0) {
            /* succeeds only for accounts with an empty password */
            if (cfg_auth_none) {
                if (user_valid) {
                    crypt_hash("", empty_hash);
                    if (strcmp(empty_hash, expected_hash) == 0) {
                        authenticated = 1;
                        break;
                    }
                }
            }
            write_str(1, "FAILURE\n");
            continue;
        }
        if (strcmp(method, "AUTH-RHOSTS") == 0) {
            if (cfg_auth_rhosts) {
                if (auth_rhosts(arg)) {
                    /* Authentication accepted. */
                    authenticated = 1;
                    break;
                }
            }
            strcpy(audit_buf, "Rhosts authentication refused for ");
            strcat(audit_buf, user_name);
            write_str(1, "FAILURE\n");
            continue;
        }
        if (strcmp(method, "AUTH-RSA") == 0) {
            if (cfg_auth_rsa) {
                if (auth_rsa(arg)) {
                    authenticated = 1;
                    break;
                }
            }
            strcpy(audit_buf, "RSA authentication refused for ");
            strcat(audit_buf, user_name);
            write_str(1, "FAILURE\n");
            continue;
        }
        if (strcmp(method, "AUTH-PASSWORD") == 0) {
            if (auth_password(arg)) {
                authenticated = 1;
                break;
            }
            attempts++;
            strcpy(audit_buf, "Failed password for ");
            strcat(audit_buf, user_name);
            strcat(audit_buf, " (attempt ");
            itoa(attempts, audit_buf + strlen(audit_buf));
            strcat(audit_buf, ")");
            if (attempts >= 3) {
                write_str(1, "TOOMANY\n");
                exit(1);
            }
            write_str(1, "FAILURE\n");
            continue;
        }
        if (strcmp(method, "DISCONNECT") == 0) {
            exit(0);
        }
        write_str(1, "PROTOCOL-ERROR\n");
        exit(1);
    }
    return authenticated;
}

void session_loop() {
    char line[256];
    int n;
    while (1) {
        n = read_line(line, 255);
        if (n < 0) {
            exit(1);
        }
        if (strcmp(line, "SHELL") == 0) {
            write_str(1, "SHELL-GRANTED $\n");
            continue;
        }
        if (strcmp(line, "DISCONNECT") == 0) {
            write_str(1, "BYE\n");
            exit(0);
        }
        write_str(1, "UNKNOWN-REQUEST\n");
    }
}

int main() {
    char peer_version[128];
    char line[512];
    int n;
    write_str(1, version_banner);
    n = packet_read(peer_version, 127);
    if (n < 0) {
        exit(1);
    }
    if (strncmp(peer_version, "SSH-", 4) != 0) {
        write_str(1, "PROTOCOL-MISMATCH\n");
        exit(1);
    }
    write_str(1, "OK\n");
    n = read_line(line, 511);
    if (n < 0) {
        exit(1);
    }
    if (strncmp(line, "AUTH-USER ", 10) != 0) {
        write_str(1, "PROTOCOL-ERROR\n");
        exit(1);
    }
    setup_user(line + 10);
    write_str(1, "OK-USER\n");
    if (do_authentication()) {
        write_str(1, "SUCCESS\n");
        session_loop();
    }
    return 0;
}
"#;

/// Build the sshd image at the canonical bases.
///
/// # Errors
/// [`BuildError`] if the embedded source fails to build (a bug; covered
/// by tests).
pub fn build_sshd() -> Result<Image, BuildError> {
    build_image(&[SSHD_SRC])
}

/// Build the *single-entry-point* sshd variant for the §5.3 ablation:
/// the identical binary with the none/rhosts/RSA mechanism switches
/// zeroed in the data segment, leaving password authentication as the
/// only way in. Text bytes — and therefore the injection target set —
/// are byte-for-byte identical to [`build_sshd`].
///
/// # Errors
/// [`BuildError`] if the embedded source fails to build.
///
/// # Panics
/// Panics if the config symbols are missing (a bug; covered by tests).
pub fn build_sshd_single_entry() -> Result<Image, BuildError> {
    let mut image = build_sshd()?;
    for flag in ["cfg_auth_none", "cfg_auth_rhosts", "cfg_auth_rsa"] {
        let sym = image
            .data_symbol(flag)
            .unwrap_or_else(|| panic!("{flag} missing"))
            .clone();
        let off = (sym.addr - image.data_base) as usize;
        image.data[off..off + 4].fill(0);
    }
    Ok(image)
}

/// The two client access patterns of §5.3.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SshPattern {
    /// Client1: existing user, wrong password (the attack pattern). Tries
    /// none → rhosts → password, like a real ssh client walking its
    /// method list.
    WrongPassword,
    /// Client2: existing user, correct password.
    CorrectPassword,
}

impl SshPattern {
    /// Both patterns in paper order.
    pub const ALL: [SshPattern; 2] = [SshPattern::WrongPassword, SshPattern::CorrectPassword];

    /// Paper-style client name.
    pub fn name(self) -> &'static str {
        match self {
            SshPattern::WrongPassword => "Client1",
            SshPattern::CorrectPassword => "Client2",
        }
    }

    /// Whether the golden run denies this client.
    pub fn golden_denied(self) -> bool {
        matches!(self, SshPattern::WrongPassword)
    }

    fn password(self) -> &'static str {
        match self {
            SshPattern::WrongPassword => "letmein",
            SshPattern::CorrectPassword => "wonderland",
        }
    }

    /// Content identity of the scripted behavior, for the campaign
    /// cache: any change to what this client sends (user, method walk,
    /// password) must change this string. The leading version tag
    /// covers script-logic changes the summary would miss.
    pub fn script_fingerprint(self) -> String {
        format!(
            "ssh-script-v1:{}:user alice:methods none,rhosts,rsa,password:pass {}",
            self.name(),
            self.password()
        )
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SshState {
    WaitBanner,
    WaitVersionOk,
    WaitUserOk,
    TryNone,
    TryRhosts,
    TryRsa,
    TryPassword,
    WaitShell,
    WaitBye,
    Done,
}

/// Scripted SSH client implementing the paper's two access patterns.
#[derive(Debug, Clone)]
pub struct SshClient {
    pattern: SshPattern,
    state: SshState,
    lines: LineBuf,
    granted: bool,
    denied: bool,
    confused: bool,
}

impl SshClient {
    /// New client with the given pattern.
    pub fn new(pattern: SshPattern) -> SshClient {
        SshClient {
            pattern,
            state: SshState::WaitBanner,
            lines: LineBuf::new(),
            granted: false,
            denied: false,
            confused: false,
        }
    }

    /// Boxed constructor for [`fisec_net::Channel`].
    pub fn boxed(pattern: SshPattern) -> Box<SshClient> {
        Box::new(SshClient::new(pattern))
    }

    fn handle_line(&mut self, line: &[u8], out: &mut dyn FnMut(Vec<u8>)) {
        let s = String::from_utf8_lossy(line).into_owned();
        match self.state {
            SshState::WaitBanner => {
                if s.starts_with("SSH-") {
                    out(b"SSH-1.5-fisec_client\r\n".to_vec());
                    self.state = SshState::WaitVersionOk;
                } else {
                    self.abort(out);
                }
            }
            SshState::WaitVersionOk => {
                if s == "OK" {
                    out(b"AUTH-USER alice\n".to_vec());
                    self.state = SshState::WaitUserOk;
                } else {
                    self.abort(out);
                }
            }
            SshState::WaitUserOk => {
                if s == "OK-USER" {
                    out(b"AUTH-NONE -\n".to_vec());
                    self.state = SshState::TryNone;
                } else {
                    self.abort(out);
                }
            }
            SshState::TryNone => match s.as_str() {
                "SUCCESS" => self.success(out),
                "FAILURE" => {
                    out(b"AUTH-RHOSTS evil.example.com\n".to_vec());
                    self.state = SshState::TryRhosts;
                }
                _ => self.abort(out),
            },
            SshState::TryRhosts => match s.as_str() {
                "SUCCESS" => self.success(out),
                "FAILURE" => {
                    out(b"AUTH-RSA alice fp:0badc0de\n".to_vec());
                    self.state = SshState::TryRsa;
                }
                _ => self.abort(out),
            },
            SshState::TryRsa => match s.as_str() {
                "SUCCESS" => self.success(out),
                "FAILURE" => {
                    let pw = self.pattern.password();
                    out(format!("AUTH-PASSWORD {pw}\n").into_bytes());
                    self.state = SshState::TryPassword;
                }
                _ => self.abort(out),
            },
            SshState::TryPassword => match s.as_str() {
                "SUCCESS" => self.success(out),
                "FAILURE" | "TOOMANY" => {
                    self.denied = true;
                    out(b"DISCONNECT\n".to_vec());
                    self.state = SshState::Done;
                }
                _ => self.abort(out),
            },
            SshState::WaitShell => {
                if s.starts_with("SHELL-GRANTED") {
                    self.granted = true;
                    out(b"DISCONNECT\n".to_vec());
                    self.state = SshState::WaitBye;
                } else {
                    self.abort(out);
                }
            }
            SshState::WaitBye => {
                if s == "BYE" {
                    self.state = SshState::Done;
                } else {
                    self.confused = true;
                }
            }
            SshState::Done => {
                self.confused = true;
            }
        }
    }

    fn success(&mut self, out: &mut dyn FnMut(Vec<u8>)) {
        out(b"SHELL\n".to_vec());
        self.state = SshState::WaitShell;
    }

    fn abort(&mut self, out: &mut dyn FnMut(Vec<u8>)) {
        self.confused = true;
        out(b"DISCONNECT\n".to_vec());
        self.state = SshState::Done;
    }
}

impl ClientDriver for SshClient {
    fn on_server_data(&mut self, data: &[u8], out: &mut dyn FnMut(Vec<u8>)) {
        self.lines.push(data);
        while let Some(line) = self.lines.pop_line() {
            self.handle_line(&line, out);
        }
    }

    fn status(&self) -> ClientStatus {
        if self.granted {
            ClientStatus::Granted
        } else if self.confused {
            ClientStatus::Confused
        } else if self.denied || self.state == SshState::Done {
            ClientStatus::Denied
        } else {
            ClientStatus::InProgress
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fisec_os::{run_session, Stop};

    fn golden(pattern: SshPattern) -> fisec_os::SessionResult {
        let img = build_sshd().expect("sshd builds");
        run_session(&img, SshClient::boxed(pattern), 5_000_000).expect("load")
    }

    #[test]
    fn sshd_builds_with_auth_functions() {
        let img = build_sshd().unwrap();
        for f in SSHD_AUTH_FUNCS {
            assert!(img.func(f).is_some(), "missing {f}");
        }
        let frac = img.text_fraction(&SSHD_AUTH_FUNCS);
        assert!(frac > 0.02 && frac < 0.7, "fraction {frac}");
    }

    #[test]
    fn client1_wrong_password_denied() {
        let r = golden(SshPattern::WrongPassword);
        assert_eq!(r.stop, Stop::Exited(0), "stop {:?}", r.stop);
        assert_eq!(r.client, ClientStatus::Denied);
    }

    #[test]
    fn client2_correct_password_gets_shell() {
        let r = golden(SshPattern::CorrectPassword);
        assert_eq!(r.stop, Stop::Exited(0), "stop {:?}", r.stop);
        assert_eq!(r.client, ClientStatus::Granted);
        let all: Vec<u8> = r
            .trace
            .messages()
            .iter()
            .filter(|m| m.dir == fisec_net::Dir::ToClient)
            .flat_map(|m| m.bytes.clone())
            .collect();
        assert!(String::from_utf8_lossy(&all).contains("SHELL-GRANTED"));
    }

    #[test]
    fn client1_walks_all_four_methods() {
        let r = golden(SshPattern::WrongPassword);
        let to_server: Vec<u8> = r
            .trace
            .messages()
            .iter()
            .filter(|m| m.dir == fisec_net::Dir::ToServer)
            .flat_map(|m| m.bytes.clone())
            .collect();
        let s = String::from_utf8_lossy(&to_server);
        assert!(s.contains("AUTH-NONE"));
        assert!(s.contains("AUTH-RHOSTS"));
        assert!(s.contains("AUTH-RSA"));
        assert!(s.contains("AUTH-PASSWORD"));
    }

    #[test]
    fn golden_runs_are_deterministic() {
        let a = golden(SshPattern::WrongPassword);
        let b = golden(SshPattern::WrongPassword);
        assert!(a.trace.matches(&b.trace));
        assert_eq!(a.icount, b.icount);
    }

    #[test]
    fn pattern_metadata() {
        assert!(SshPattern::WrongPassword.golden_denied());
        assert!(!SshPattern::CorrectPassword.golden_denied());
        assert_eq!(SshPattern::WrongPassword.name(), "Client1");
    }

    #[test]
    fn single_entry_variant_behaves() {
        // Same text bytes, different config data.
        let multi = build_sshd().unwrap();
        let single = build_sshd_single_entry().unwrap();
        assert_eq!(multi.text, single.text, "ablation must not change text");
        assert_ne!(multi.data, single.data);
        // Correct password still works; rhosts/none/rsa paths are dead.
        let ok = run_session(
            &single,
            SshClient::boxed(SshPattern::CorrectPassword),
            5_000_000,
        )
        .unwrap();
        assert_eq!(ok.client, ClientStatus::Granted);
        let bad = run_session(
            &single,
            SshClient::boxed(SshPattern::WrongPassword),
            5_000_000,
        )
        .unwrap();
        assert_eq!(bad.client, ClientStatus::Denied);
    }

    #[test]
    fn push_0x2000_appears_in_packet_read() {
        // Figure 3: the 8192 buffer length is pushed as an immediate.
        let img = build_sshd().unwrap();
        let f = img.func("packet_read").unwrap().clone();
        let insts = img.decode_func(&f);
        let has_push_2000 = insts.iter().any(|(_, i)| {
            i.op == fisec_x86::Op::Push && i.dst == Some(fisec_x86::Operand::Imm(0x2000))
        });
        assert!(has_push_2000, "no `push $0x2000` in packet_read");
    }
}
