//! Binomial confidence intervals for sampled campaigns.
//!
//! The random-injection tier estimates a rare-event rate (the paper's
//! §7 "about one out of 3,000 errors causes a security violation") from
//! a sample, so the estimate is only meaningful with an explicit
//! interval. Two standard 95% intervals on a binomial proportion are
//! provided:
//!
//! * **Wilson score** ([`wilson`]): the score-test inversion. Good
//!   coverage even for small `k`, never leaves `[0, 1]`, cheap
//!   closed form — this is the interval the adaptive `--target-ci`
//!   loop drives on.
//! * **Clopper-Pearson** ([`clopper_pearson`]): the "exact" interval
//!   from inverting the binomial test; conservative (coverage ≥
//!   nominal), the conventional companion number in fault-injection
//!   reports.
//!
//! Clopper-Pearson bounds are Beta-distribution quantiles; the
//! regularized incomplete beta function is evaluated by the standard
//! continued fraction (Lentz) and inverted by bisection — no external
//! math dependency, deterministic across platforms.

/// Two-sided z for a 95% normal interval.
pub const Z95: f64 = 1.959_963_984_540_054;

/// A two-sided confidence interval on a proportion.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Ci {
    /// Lower bound, clamped to `[0, 1]`.
    pub low: f64,
    /// Upper bound, clamped to `[0, 1]`.
    pub high: f64,
}

impl Ci {
    /// Interval width `high - low`.
    pub fn width(&self) -> f64 {
        self.high - self.low
    }
}

/// Wilson score interval for `k` successes in `n` trials at critical
/// value `z`. For `n == 0` the interval is the vacuous `[0, 1]`.
pub fn wilson(k: u64, n: u64, z: f64) -> Ci {
    assert!(k <= n, "k={k} successes out of n={n} trials");
    if n == 0 {
        return Ci {
            low: 0.0,
            high: 1.0,
        };
    }
    let nf = n as f64;
    let p = k as f64 / nf;
    let z2 = z * z;
    let denom = 1.0 + z2 / nf;
    let center = (p + z2 / (2.0 * nf)) / denom;
    let half = z * (p * (1.0 - p) / nf + z2 / (4.0 * nf * nf)).sqrt() / denom;
    // At the edges the closed form is exactly 0 (resp. 1) on paper but
    // accumulates ~1e-18 of floating-point noise; pin it.
    Ci {
        low: if k == 0 {
            0.0
        } else {
            (center - half).max(0.0)
        },
        high: if k == n {
            1.0
        } else {
            (center + half).min(1.0)
        },
    }
}

/// [`wilson`] at 95%.
pub fn wilson95(k: u64, n: u64) -> Ci {
    wilson(k, n, Z95)
}

/// Clopper-Pearson ("exact") interval for `k` successes in `n` trials
/// at significance `alpha` (0.05 for a 95% interval). For `n == 0` the
/// interval is the vacuous `[0, 1]`; `k == 0` pins the lower bound to 0
/// and `k == n` pins the upper bound to 1, exactly as the definition
/// does.
pub fn clopper_pearson(k: u64, n: u64, alpha: f64) -> Ci {
    assert!(k <= n, "k={k} successes out of n={n} trials");
    assert!(alpha > 0.0 && alpha < 1.0, "alpha={alpha} out of (0,1)");
    if n == 0 {
        return Ci {
            low: 0.0,
            high: 1.0,
        };
    }
    let (kf, nf) = (k as f64, n as f64);
    let low = if k == 0 {
        0.0
    } else {
        beta_quantile(kf, nf - kf + 1.0, alpha / 2.0)
    };
    let high = if k == n {
        1.0
    } else {
        beta_quantile(kf + 1.0, nf - kf, 1.0 - alpha / 2.0)
    };
    Ci { low, high }
}

/// [`clopper_pearson`] at 95%.
pub fn clopper_pearson95(k: u64, n: u64) -> Ci {
    clopper_pearson(k, n, 0.05)
}

/// `ln Γ(x)` for `x > 0` (Lanczos approximation, g = 7, 9 terms;
/// relative error below 1e-13 over the domain used here).
fn ln_gamma(x: f64) -> f64 {
    const COEF: [f64; 8] = [
        676.520_368_121_885_1,
        -1_259.139_216_722_402_8,
        771.323_428_777_653_1,
        -176.615_029_162_140_6,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_12,
        9.984_369_578_019_572e-6,
        1.505_632_735_149_311_6e-7,
    ];
    if x < 0.5 {
        // Reflection keeps the Lanczos series in its accurate range.
        let pi = std::f64::consts::PI;
        return (pi / (pi * x).sin()).ln() - ln_gamma(1.0 - x);
    }
    let x = x - 1.0;
    let mut a = 0.999_999_999_999_809_9;
    for (i, c) in COEF.iter().enumerate() {
        a += c / (x + i as f64 + 1.0);
    }
    let t = x + 7.5;
    0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + a.ln()
}

/// Continued fraction for the incomplete beta function (modified Lentz;
/// Numerical Recipes `betacf`).
fn betacf(a: f64, b: f64, x: f64) -> f64 {
    const MAX_ITER: usize = 300;
    const EPS: f64 = 1e-15;
    const TINY: f64 = 1e-300;
    let qab = a + b;
    let qap = a + 1.0;
    let qam = a - 1.0;
    let mut c = 1.0;
    let mut d = 1.0 - qab * x / qap;
    if d.abs() < TINY {
        d = TINY;
    }
    d = 1.0 / d;
    let mut h = d;
    for m in 1..=MAX_ITER {
        let m = m as f64;
        let m2 = 2.0 * m;
        // Even step.
        let aa = m * (b - m) * x / ((qam + m2) * (a + m2));
        d = 1.0 + aa * d;
        if d.abs() < TINY {
            d = TINY;
        }
        c = 1.0 + aa / c;
        if c.abs() < TINY {
            c = TINY;
        }
        d = 1.0 / d;
        h *= d * c;
        // Odd step.
        let aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2));
        d = 1.0 + aa * d;
        if d.abs() < TINY {
            d = TINY;
        }
        c = 1.0 + aa / c;
        if c.abs() < TINY {
            c = TINY;
        }
        d = 1.0 / d;
        let del = d * c;
        h *= del;
        if (del - 1.0).abs() < EPS {
            break;
        }
    }
    h
}

/// Regularized incomplete beta function `I_x(a, b)`, the CDF of
/// `Beta(a, b)` at `x`.
fn betainc(a: f64, b: f64, x: f64) -> f64 {
    if x <= 0.0 {
        return 0.0;
    }
    if x >= 1.0 {
        return 1.0;
    }
    let ln_front = ln_gamma(a + b) - ln_gamma(a) - ln_gamma(b) + a * x.ln() + b * (1.0 - x).ln();
    let front = ln_front.exp();
    // Use the continued fraction on whichever side converges fast.
    if x < (a + 1.0) / (a + b + 2.0) {
        front * betacf(a, b, x) / a
    } else {
        1.0 - front * betacf(b, a, 1.0 - x) / b
    }
}

/// Quantile of `Beta(a, b)` at probability `p`, by bisection on the
/// monotone CDF. 200 halvings of `[0, 1]` bottom out at f64 resolution,
/// so the result is deterministic and accurate to machine precision of
/// the CDF evaluation.
fn beta_quantile(a: f64, b: f64, p: f64) -> f64 {
    if p <= 0.0 {
        return 0.0;
    }
    if p >= 1.0 {
        return 1.0;
    }
    let (mut lo, mut hi) = (0.0f64, 1.0f64);
    for _ in 0..200 {
        let mid = 0.5 * (lo + hi);
        if betainc(a, b, mid) < p {
            lo = mid;
        } else {
            hi = mid;
        }
        if hi - lo <= f64::EPSILON * mid {
            break;
        }
    }
    0.5 * (lo + hi)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Exact binomial CDF `P[X <= k]` for the modest `n` used in tests.
    fn binom_cdf(k: u64, n: u64, p: f64) -> f64 {
        let mut total = 0.0;
        for i in 0..=k {
            let ln_c = ln_gamma(n as f64 + 1.0)
                - ln_gamma(i as f64 + 1.0)
                - ln_gamma((n - i) as f64 + 1.0);
            total += (ln_c + i as f64 * p.ln() + (n - i) as f64 * (1.0 - p).ln()).exp();
        }
        total
    }

    #[test]
    fn ln_gamma_matches_known_values() {
        // Γ(1) = Γ(2) = 1, Γ(5) = 24, Γ(0.5) = √π.
        assert!(ln_gamma(1.0).abs() < 1e-12);
        assert!(ln_gamma(2.0).abs() < 1e-12);
        assert!((ln_gamma(5.0) - 24.0f64.ln()).abs() < 1e-12);
        assert!((ln_gamma(0.5) - std::f64::consts::PI.sqrt().ln()).abs() < 1e-12);
    }

    #[test]
    fn betainc_is_a_cdf() {
        assert_eq!(betainc(2.0, 3.0, 0.0), 0.0);
        assert_eq!(betainc(2.0, 3.0, 1.0), 1.0);
        // Beta(1,1) is uniform.
        for x in [0.1, 0.5, 0.9] {
            assert!((betainc(1.0, 1.0, x) - x).abs() < 1e-12, "{x}");
        }
        // Beta(2,2): CDF = 3x² − 2x³.
        for x in [0.2, 0.5, 0.8] {
            let expect = 3.0 * x * x - 2.0 * x * x * x;
            assert!((betainc(2.0, 2.0, x) - expect).abs() < 1e-12, "{x}");
        }
        // Monotone.
        assert!(betainc(5.0, 9.0, 0.3) < betainc(5.0, 9.0, 0.31));
    }

    #[test]
    fn beta_quantile_inverts_the_cdf() {
        for (a, b) in [(1.0, 1.0), (2.0, 5.0), (10.0, 91.0), (0.5, 3.5)] {
            for p in [0.025, 0.5, 0.975] {
                let x = beta_quantile(a, b, p);
                assert!(
                    (betainc(a, b, x) - p).abs() < 1e-10,
                    "a={a} b={b} p={p} x={x}"
                );
            }
        }
    }

    #[test]
    fn wilson_matches_published_values() {
        // k=10, n=100, 95%: the standard worked example gives
        // [0.0552, 0.1744] (e.g. Brown–Cai–DasGupta's running example).
        let ci = wilson95(10, 100);
        assert!((ci.low - 0.0552).abs() < 5e-4, "{ci:?}");
        assert!((ci.high - 0.1744).abs() < 5e-4, "{ci:?}");
        // k=1, n=3000 — the paper's closing rate. Wilson 95% is
        // approximately [5.9e-5, 1.9e-3].
        let ci = wilson95(1, 3000);
        assert!((ci.low - 5.9e-5).abs() < 1e-5, "{ci:?}");
        assert!((ci.high - 1.884e-3).abs() < 5e-5, "{ci:?}");
    }

    #[test]
    fn wilson_edge_cases() {
        // n=0: vacuous.
        assert_eq!(
            wilson95(0, 0),
            Ci {
                low: 0.0,
                high: 1.0
            }
        );
        // k=0: lower bound exactly 0 (the closed form cancels).
        let ci = wilson95(0, 20);
        assert!(ci.low.abs() < 1e-12, "{ci:?}");
        assert!(ci.high > 0.0 && ci.high < 1.0, "{ci:?}");
        // k=n mirrors k=0.
        let hi = wilson95(20, 20);
        assert!((hi.high - 1.0).abs() < 1e-12, "{hi:?}");
        assert!((hi.low - (1.0 - ci.high)).abs() < 1e-12, "{hi:?} vs {ci:?}");
        // Wider confidence (larger z) widens the interval.
        assert!(wilson(5, 50, 2.576).width() > wilson(5, 50, 1.96).width());
    }

    #[test]
    fn clopper_pearson_matches_published_values() {
        // R: binom.test(10, 100)$conf.int -> [0.04900469, 0.17622260].
        let ci = clopper_pearson95(10, 100);
        assert!((ci.low - 0.049_004_69).abs() < 1e-6, "{ci:?}");
        assert!((ci.high - 0.176_222_60).abs() < 1e-6, "{ci:?}");
        // R: binom.test(0, 20)$conf.int -> [0, 0.1684335]; the k=0
        // upper bound has the closed form 1 - (α/2)^(1/n).
        let ci = clopper_pearson95(0, 20);
        assert_eq!(ci.low, 0.0);
        let closed = 1.0 - 0.025f64.powf(1.0 / 20.0);
        assert!((ci.high - closed).abs() < 1e-9, "{ci:?} vs {closed}");
        assert!((ci.high - 0.168_433_5).abs() < 1e-6, "{ci:?}");
        // k=n mirrors k=0.
        let ci = clopper_pearson95(20, 20);
        assert_eq!(ci.high, 1.0);
        assert!((ci.low - (1.0 - closed)).abs() < 1e-9, "{ci:?}");
    }

    #[test]
    fn clopper_pearson_satisfies_its_defining_equations() {
        // The bounds invert the binomial test: at the lower bound,
        // P[X >= k] = α/2; at the upper bound, P[X <= k] = α/2.
        for (k, n) in [(1u64, 30u64), (3, 100), (7, 250), (1, 3000)] {
            let ci = clopper_pearson95(k, n);
            let upper_tail_at_low = 1.0 - binom_cdf(k - 1, n, ci.low);
            let lower_tail_at_high = binom_cdf(k, n, ci.high);
            assert!(
                (upper_tail_at_low - 0.025).abs() < 1e-7,
                "k={k} n={n}: {upper_tail_at_low}"
            );
            assert!(
                (lower_tail_at_high - 0.025).abs() < 1e-7,
                "k={k} n={n}: {lower_tail_at_high}"
            );
        }
    }

    #[test]
    fn clopper_pearson_is_wider_and_both_cover_the_estimate() {
        // CP is the conservative interval: with at least one observed
        // success it is wider than Wilson (the two are not nested
        // pointwise — Wilson's upper bound can exceed CP's at small k).
        // Both always cover the point estimate k/n.
        for (k, n) in [(1u64, 3000u64), (5, 10_000), (10, 100), (300, 1_000_000)] {
            let cp = clopper_pearson95(k, n);
            let w = wilson95(k, n);
            assert!(cp.width() >= w.width(), "k={k} n={n}: {cp:?} vs {w:?}");
            let p = k as f64 / n as f64;
            for ci in [cp, w] {
                assert!(ci.low <= p && p <= ci.high, "k={k} n={n}: {ci:?}");
            }
        }
    }

    #[test]
    fn intervals_narrow_with_sample_size() {
        // Same rate, 100x the sample: both intervals shrink well over
        // 5x (≈ √100 for the asymptotic one).
        let w1 = wilson95(3, 9000);
        let w2 = wilson95(300, 900_000);
        assert!(w2.width() < w1.width() / 5.0);
        let c1 = clopper_pearson95(3, 9000);
        let c2 = clopper_pearson95(300, 900_000);
        assert!(c2.width() < c1.width() / 5.0);
    }

    #[test]
    #[should_panic(expected = "successes out of")]
    fn more_successes_than_trials_is_a_bug() {
        let _ = wilson95(5, 4);
    }
}
