//! Substrate performance: decoder throughput, interpreter instruction
//! rate, compiler/assembler build time. These bound how long the
//! exhaustive campaigns take (~10^4 sessions × ~10^5 instructions).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use fisec_apps::{build_ftpd, build_sshd, AppSpec};
use fisec_core::{run_campaign, CampaignConfig, ExecutionMode};
use fisec_x86::{decode, Machine, Memory, Perms, Region};

fn bench_decoder(c: &mut Criterion) {
    let image = build_ftpd().unwrap();
    let text = image.text.clone();
    let mut g = c.benchmark_group("decoder");
    g.throughput(Throughput::Bytes(text.len() as u64));
    g.bench_function("linear_text_sweep", |b| {
        b.iter(|| {
            let mut pos = 0usize;
            let mut n = 0u32;
            while pos < text.len() {
                let i = decode(std::hint::black_box(&text[pos..text.len().min(pos + 15)]));
                pos += i.len as usize;
                n += 1;
            }
            n
        })
    });
    g.finish();
}

fn bench_interpreter(c: &mut Criterion) {
    // A tight arithmetic loop: 5 instructions per iteration.
    // mov ecx, N; top: add eax,1; xor eax,3; dec ecx; jne top; ret-ish.
    let n = 100_000u32;
    let mut text = vec![0xB9];
    text.extend_from_slice(&n.to_le_bytes());
    text.extend_from_slice(&[
        0x83, 0xC0, 0x01, // top: add eax, 1
        0x83, 0xF0, 0x03, // xor eax, 3
        0x49, // dec ecx
        0x75, 0xF7, // jne top (back 9 bytes)
        0xEB, 0xFE, // jmp self (we stop via budget)
    ]);
    let mut g = c.benchmark_group("interpreter");
    g.throughput(Throughput::Elements(n as u64 * 4));
    // Same loop under the block-dispatch engine (default) and the
    // per-step reference: elements/sec is instructions/sec, so the
    // ratio of the two is the raw interpreter speedup the block cache
    // buys (EXPERIMENTS.md records measured numbers).
    for (label, block_engine) in [
        ("alu_loop_block_engine", true),
        ("alu_loop_stepwise", false),
    ] {
        g.bench_function(label, |b| {
            b.iter(|| {
                let mut mem = Memory::new();
                mem.map(Region::with_data("text", 0x1000, text.clone(), Perms::RX))
                    .unwrap();
                let mut m = Machine::new(mem);
                m.set_block_engine(block_engine);
                m.cpu.eip = 0x1000;
                let out = m.run_until_event(1 + u64::from(n) * 4);
                std::hint::black_box((out, m.cpu.regs[0]))
            })
        });
    }
    g.finish();
}

fn bench_build(c: &mut Criterion) {
    let mut g = c.benchmark_group("compiler");
    g.sample_size(20);
    g.bench_function("build_ftpd_image", |b| b.iter(|| build_ftpd().unwrap()));
    g.bench_function("build_sshd_image", |b| b.iter(|| build_sshd().unwrap()));
    g.finish();
}

fn bench_campaign_engines(c: &mut Criterion) {
    // Head-to-head: the checkpointed engine vs the from-scratch
    // reference oracle on the same real (cut-down) campaign — ftpd
    // pass() branches, attack + correct-password clients. The
    // differential tests prove the results identical; this measures the
    // speedup the snapshot engine buys (EXPERIMENTS.md records the
    // full-report numbers).
    let mut app = AppSpec::ftpd();
    app.auth_funcs = vec!["pass"];
    app.clients.truncate(2);
    let runs = fisec_inject::enumerate_targets(&app.image, &app.auth_funcs, false).runs()
        * app.clients.len();
    let mut g = c.benchmark_group("campaign");
    g.sample_size(10);
    g.throughput(Throughput::Elements(runs as u64));
    for (label, mode, block_cache) in [
        ("snapshot_engine", ExecutionMode::Snapshot, true),
        ("snapshot_no_block_cache", ExecutionMode::Snapshot, false),
        ("from_scratch_engine", ExecutionMode::FromScratch, true),
        (
            "from_scratch_no_block_cache",
            ExecutionMode::FromScratch,
            false,
        ),
    ] {
        let cfg = CampaignConfig {
            mode,
            block_cache,
            ..CampaignConfig::default()
        };
        g.bench_function(label, |b| {
            b.iter(|| std::hint::black_box(run_campaign(&app, &cfg)))
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_decoder,
    bench_interpreter,
    bench_build,
    bench_campaign_engines
);
criterion_main!(benches);
