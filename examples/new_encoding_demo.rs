//! Walk through the paper's §6 new instruction encoding.
//!
//! Prints Table 4, verifies the Hamming-distance properties, and repeats
//! the paper's §6.2 evaluation procedure on the `je` example.
//!
//! ```text
//! cargo run --example new_encoding_demo
//! ```

use fisec_encoding::{
    hamming, map_1byte, min_pairwise_hd, remap_flip, render_table4, ByteCtx, EncodingScheme,
};

fn main() {
    println!("== Table 4: x86 Conditional Branch Instruction Encoding Mapping ==");
    println!("{}", render_table4());

    let old: Vec<u8> = (0x70..=0x7F).collect();
    let new: Vec<u8> = old.iter().map(|b| map_1byte(*b)).collect();
    println!(
        "minimum pairwise Hamming distance: old block = {}, new block = {}",
        min_pairwise_hd(&old).unwrap(),
        min_pairwise_hd(&new).unwrap()
    );
    assert_eq!(min_pairwise_hd(&old), Some(1));
    assert_eq!(min_pairwise_hd(&new), Some(2));
    println!(
        "je/jne under the old encoding: {:#04x} vs {:#04x}, distance {}\n",
        0x74,
        0x75,
        hamming(0x74, 0x75)
    );

    println!("== §6.2 evaluation procedure (map -> flip -> map back) ==");
    println!("inject je (0x74), flipping each bit under the new encoding:");
    for bit in 0..8 {
        let old_flip = remap_flip(0x74, bit, ByteCtx::OneByteOpcode, EncodingScheme::Baseline);
        let new_flip = remap_flip(
            0x74,
            bit,
            ByteCtx::OneByteOpcode,
            EncodingScheme::NewEncoding,
        );
        let branchy = |b: u8| {
            if (0x70..=0x7F).contains(&b) {
                "BRANCH"
            } else {
                "other"
            }
        };
        println!(
            "  bit {bit}: baseline -> {old_flip:#04x} ({}), new encoding -> {new_flip:#04x} ({})",
            branchy(old_flip),
            branchy(new_flip)
        );
        // The headline guarantee: never another conditional branch.
        if new_flip != 0x74 {
            assert!(!(0x70..=0x7F).contains(&new_flip));
        }
    }
    println!();
    println!("paper walk-through: je 0x74 -> new 0x64; flip lsb -> 0x65; back -> 0x65");
    assert_eq!(
        remap_flip(0x74, 0, ByteCtx::OneByteOpcode, EncodingScheme::NewEncoding),
        0x65
    );
    println!("               and: old 0x65 -> new 0x65; flip lsb -> 0x64; back -> je 0x74");
    assert_eq!(
        remap_flip(0x65, 0, ByteCtx::OneByteOpcode, EncodingScheme::NewEncoding),
        0x74
    );
    println!("\nall assertions passed — the mapping matches the paper exactly");
}
