//! Tier-2 trace engine benchmarks: the superblock cache only pays off
//! on multi-block loops (a single self-looping block is already served
//! by the tier-1 resident fast path), so the interpreter leg here uses
//! a loop whose body spans three blocks via taken branches. The
//! campaign leg measures the end-to-end ftpd win with traces on vs off
//! — the differential tests prove both legs bit-identical.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use fisec_apps::AppSpec;
use fisec_core::{run_campaign, CampaignConfig, ExecutionMode};
use fisec_x86::{Machine, Memory, Perms, Region};

/// A loop whose body crosses two taken branches, giving tier 2 edges to
/// link across (7 instructions per iteration):
///   mov ecx, N
///   top: add eax, 1
///        jmp a            ; taken: block boundary
///   a:   xor eax, 3
///        jmp b            ; taken: block boundary
///   b:   dec ecx
///        jne top
///   jmp $
fn multi_block_loop(n: u32) -> Vec<u8> {
    let mut text = vec![0xB9];
    text.extend_from_slice(&n.to_le_bytes());
    text.extend_from_slice(&[
        0x83, 0xC0, 0x01, // top: add eax, 1
        0xEB, 0x00, // jmp a (next byte)
        0x83, 0xF0, 0x03, // a: xor eax, 3
        0xEB, 0x00, // jmp b
        0x49, // b: dec ecx
        0x75, 0xF3, // jne top (back 13 bytes)
        0xEB, 0xFE, // jmp $
    ]);
    text
}

fn bench_trace_interpreter(c: &mut Criterion) {
    let n = 100_000u32;
    let text = multi_block_loop(n);
    let insts = 1 + u64::from(n) * 7;
    let mut g = c.benchmark_group("tier2");
    g.throughput(Throughput::Elements(insts));
    for (label, trace_cache) in [
        ("multi_block_loop_trace_engine", true),
        ("multi_block_loop_tier1_only", false),
    ] {
        g.bench_function(label, |b| {
            b.iter(|| {
                let mut mem = Memory::new();
                mem.map(Region::with_data("text", 0x1000, text.clone(), Perms::RX))
                    .unwrap();
                let mut m = Machine::new(mem);
                m.set_trace_cache(trace_cache);
                m.cpu.eip = 0x1000;
                let out = m.run_until_event(insts);
                std::hint::black_box((out, m.cpu.regs[0]))
            })
        });
    }
    g.finish();
}

fn bench_trace_campaign(c: &mut Criterion) {
    // The same cut-down ftpd campaign as the substrate bench, with the
    // trace cache as the only variable.
    let mut app = AppSpec::ftpd();
    app.auth_funcs = vec!["pass"];
    app.clients.truncate(2);
    let runs = fisec_inject::enumerate_targets(&app.image, &app.auth_funcs, false).runs()
        * app.clients.len();
    let mut g = c.benchmark_group("tier2_campaign");
    g.sample_size(10);
    g.throughput(Throughput::Elements(runs as u64));
    for (label, trace_cache) in [
        ("snapshot_trace_cache", true),
        ("snapshot_no_trace_cache", false),
    ] {
        let cfg = CampaignConfig {
            mode: ExecutionMode::Snapshot,
            trace_cache,
            ..CampaignConfig::default()
        };
        g.bench_function(label, |b| {
            b.iter(|| std::hint::black_box(run_campaign(&app, &cfg)))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_trace_interpreter, bench_trace_campaign);
criterion_main!(benches);
