//! Regenerates the paper's §7 estimate — "about one out of 3,000
//! single-bit errors causes security violation" under massive random
//! injection with the server under constant attack — and benchmarks one
//! latent-error session.

use criterion::{criterion_group, criterion_main, Criterion};
use fisec_apps::AppSpec;
use fisec_core::random::{run_random_campaign, run_with_latent_error};
use fisec_inject::golden_run;

fn bench(c: &mut Criterion) {
    let ftpd = AppSpec::ftpd();
    let runs = if fisec_bench::quick_mode() { 300 } else { 3000 };

    let r = run_random_campaign(&ftpd, runs, 2001);
    println!("\n== §7: random single-bit errors, server under constant attack ==");
    println!(
        "runs {}  no-effect {}  SD {}  FSV {}  BRK {}",
        r.runs, r.no_effect, r.sd, r.fsv, r.brk
    );
    match r.errors_per_breakin() {
        Some(n) => println!(
            "=> about one out of {n:.0} single-bit errors causes a security violation\n\
             (the paper reports ~1/3000 on a full-size wu-ftpd text segment; our\n\
             text segment is ~30x smaller and ~30% auth code, so a higher rate\n\
             is expected — see EXPERIMENTS.md)"
        ),
        None => println!("=> no break-in in this sample"),
    }

    let spec = &ftpd.clients[0];
    let golden = golden_run(&ftpd.image, spec).unwrap();
    c.bench_function("latent_error_session/ftpd_client1", |b| {
        b.iter(|| {
            run_with_latent_error(
                &ftpd.image,
                spec,
                &golden,
                std::hint::black_box(100),
                std::hint::black_box(3),
            )
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench
}
criterion_main!(benches);
