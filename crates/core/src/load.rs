//! The §5.4 load/diversity study.
//!
//! The paper argues that a *latent* error (persisting in memory across
//! forked connection handlers) manifests with higher probability as the
//! server load carries more *diversified* client request patterns,
//! because diverse patterns exercise more of the code. This module
//! quantifies that: sample random latent text errors, replay each client
//! pattern against the corrupted image, and report the probability that
//! at least one of the first `k` patterns manifests the error, as a
//! function of `k`.

use crate::random::run_with_latent_error;
use fisec_apps::AppSpec;
use fisec_inject::{golden_run, GoldenRun, OutcomeClass};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Result of the load/diversity study.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LoadStudyResult {
    /// Sampled latent errors.
    pub samples: usize,
    /// `manifest_probability[k-1]` = P(at least one of the first `k`
    /// client patterns manifests the error).
    pub manifest_probability: Vec<f64>,
}

impl LoadStudyResult {
    /// The probabilities must be monotonically non-decreasing in `k`
    /// (more diverse load can only expose more).
    pub fn is_monotone(&self) -> bool {
        self.manifest_probability
            .windows(2)
            .all(|w| w[1] >= w[0] - 1e-12)
    }
}

/// Run the study over `samples` random single-bit latent errors.
pub fn run_load_study(app: &AppSpec, samples: usize, seed: u64) -> LoadStudyResult {
    let goldens: Vec<GoldenRun> = app
        .clients
        .iter()
        .map(|c| golden_run(&app.image, c).expect("image loads"))
        .collect();
    let mut rng = StdRng::seed_from_u64(seed);
    let k_max = app.clients.len();
    let mut manifest_by_k = vec![0usize; k_max];
    for _ in 0..samples {
        let offset = rng.gen_range(0..app.image.text.len());
        let bit = rng.gen_range(0..8u8);
        let mut manifested_so_far = false;
        for (k, (spec, golden)) in app.clients.iter().zip(&goldens).enumerate() {
            if !manifested_so_far {
                let run = run_with_latent_error(&app.image, spec, golden, offset, bit)
                    .expect("sampled offset/bit are in range");
                if run.outcome != OutcomeClass::NotManifested {
                    manifested_so_far = true;
                }
            }
            if manifested_so_far {
                manifest_by_k[k] += 1;
            }
        }
    }
    LoadStudyResult {
        samples,
        manifest_probability: manifest_by_k
            .iter()
            .map(|m| {
                if samples == 0 {
                    0.0
                } else {
                    *m as f64 / samples as f64
                }
            })
            .collect(),
    }
}

/// Render the study as a small table.
pub fn render(r: &LoadStudyResult) -> String {
    let mut out = String::from("distinct client patterns (k)   P(latent error manifests)\n");
    for (i, p) in r.manifest_probability.iter().enumerate() {
        out.push_str(&format!("{:>29}   {:>24.3}\n", i + 1, p));
    }
    out.push_str(&format!("samples: {}\n", r.samples));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use fisec_apps::AppSpec;

    #[test]
    fn load_study_is_monotone_and_reproducible() {
        let app = AppSpec::ftpd();
        let a = run_load_study(&app, 12, 7);
        let b = run_load_study(&app, 12, 7);
        assert_eq!(a, b);
        assert_eq!(a.manifest_probability.len(), 4);
        assert!(a.is_monotone(), "{:?}", a.manifest_probability);
    }

    #[test]
    fn render_contains_rows() {
        let r = LoadStudyResult {
            samples: 10,
            manifest_probability: vec![0.3, 0.4, 0.4, 0.5],
        };
        assert!(r.is_monotone());
        let s = render(&r);
        assert_eq!(s.lines().count(), 6);
        assert!(s.contains("samples: 10"));
    }

    #[test]
    fn empty_study() {
        let app = AppSpec::sshd();
        let r = run_load_study(&app, 0, 0);
        assert_eq!(r.samples, 0);
        assert!(r.manifest_probability.iter().all(|p| *p == 0.0));
    }
}
