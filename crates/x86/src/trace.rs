//! Tier-2 superblock trace cache.
//!
//! The block engine (tier 1, see [`crate::block`]) still pays a full
//! dispatch — breakpoint check, budget check, cache probe — per basic
//! block, and hot server loops are chains of *short* blocks: strlen's
//! two four-instruction blocks retire 30% of all guest instructions
//! (EXPERIMENTS.md). A [`SuperTrace`] links the blocks observed to
//! execute back-to-back across taken branches into one dispatch unit,
//! keyed by entry EIP plus a short branch-history signature so the same
//! entry can hold different traces on different paths.
//!
//! Execution stays bit-identical to the per-step engine by
//! construction: a trace executes its constituent blocks through the
//! *same* block executor tier 1 uses, and between blocks a guard
//! compares the live EIP against the recorded successor's entry — on a
//! mispredicted edge the trace side-exits and the dispatch loop falls
//! back to tier 1 with every instruction so far retired exactly as
//! tier 1 would have retired it. Soundness against self-modifying code
//! and snapshot restores rides on the same executable-write journal
//! that protects the block cache: a trace is dropped whenever any of
//! its blocks covers a journaled byte, and a generation change observed
//! mid-trace side-exits immediately.
//!
//! Promotion is heat-based: a block-cache dispatch that misses the
//! trace cache bumps a direct-mapped heat counter for its
//! `(entry, history)` pair; past the threshold the machine enters
//! record mode and appends each cleanly completed block until the
//! length bound, a fallback, or a fault ends the recording.

use crate::block::Block;
use std::sync::Arc;

/// Most blocks a single trace may link. Bounds the work one tier-2
/// dispatch commits to before budget and breakpoints are re-checked
/// (`MAX_TRACE_BLOCKS * MAX_BLOCK_INSTS` instructions at worst).
pub(crate) const MAX_TRACE_BLOCKS: usize = 8;

/// Trace-cache slots and heat-counter entries (power of two).
const TRACE_SLOTS: usize = 2048;

/// Dispatches of a block-cache entry (per `(entry, history)` pair)
/// before it is promoted to trace recording.
const DEFAULT_THRESHOLD: u16 = 16;

/// A superblock: basic blocks observed to execute back-to-back,
/// replayed as one dispatch unit with inter-block guards.
#[derive(Debug)]
pub struct SuperTrace {
    /// Entry EIP of the first block — the cache key, with `hist`.
    pub entry: u32,
    /// Branch-history signature at the time the trace was recorded.
    pub hist: u8,
    /// The linked blocks, in execution order.
    pub blocks: Vec<Arc<Block>>,
    /// Sum of `insts.len()` over all blocks: the instruction budget a
    /// full trace execution commits to.
    pub total_insts: u64,
    /// Lowest entry address over all blocks (breakpoint pre-check).
    pub lo: u32,
    /// Highest `end` over all blocks (breakpoint pre-check).
    pub hi: u64,
}

impl SuperTrace {
    /// Does any linked block's byte range cover `addr`?
    #[inline]
    pub fn covers(&self, addr: u32) -> bool {
        self.blocks.iter().any(|b| b.covers(addr))
    }
}

/// In-progress trace recording (lives on the machine while record mode
/// is active; survives syscall exits so traces can span them).
#[derive(Debug, Clone)]
pub(crate) struct TraceRec {
    pub entry: u32,
    pub hist: u8,
    pub blocks: Vec<Arc<Block>>,
    pub total: u64,
}

/// Cumulative trace-cache counters, exposed for tests, the profiler
/// and the bench crate.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TraceStats {
    /// Traces recorded and inserted.
    pub built: u64,
    /// Dispatches served from the trace cache.
    pub hits: u64,
    /// Guard mispredictions and mid-trace self-modification exits.
    pub side_exits: u64,
    /// Traces dropped by invalidation (targeted or full clears).
    pub invalidated: u64,
    /// Traces currently resident.
    pub cached: usize,
}

/// Direct-mapped `(entry, history) → Arc<SuperTrace>` cache plus the
/// promotion heat counters.
#[derive(Debug, Clone)]
pub(crate) struct TraceCache {
    slots: Vec<Option<Arc<SuperTrace>>>,
    heat: Vec<u16>,
    /// Indices of occupied slots, unordered — journal-driven
    /// invalidation walks only the resident population (see the
    /// matching index in [`crate::block`]'s cache).
    occupied: Vec<u32>,
    threshold: u16,
    built: u64,
    hits: u64,
    side_exits: u64,
    invalidated: u64,
}

impl Default for TraceCache {
    fn default() -> TraceCache {
        TraceCache {
            slots: Vec::new(),
            heat: Vec::new(),
            occupied: Vec::new(),
            threshold: DEFAULT_THRESHOLD,
            built: 0,
            hits: 0,
            side_exits: 0,
            invalidated: 0,
        }
    }
}

impl TraceCache {
    #[inline]
    fn slot_of(entry: u32, hist: u8) -> usize {
        (entry as usize ^ (entry as usize >> 12) ^ ((hist as usize) << 3)) & (TRACE_SLOTS - 1)
    }

    /// The resident trace recorded at `(entry, hist)`, if any.
    #[inline]
    pub fn get(&mut self, entry: u32, hist: u8) -> Option<Arc<SuperTrace>> {
        let t = self.slots.get(Self::slot_of(entry, hist))?.as_ref()?;
        if t.entry == entry && t.hist == hist {
            self.hits += 1;
            Some(Arc::clone(t))
        } else {
            None
        }
    }

    /// Bump the heat counter for `(entry, hist)`; `true` when the
    /// promotion threshold was just crossed (the counter resets, so the
    /// pair must re-heat before being promoted again).
    #[inline]
    pub fn heat_up(&mut self, entry: u32, hist: u8) -> bool {
        if self.heat.is_empty() {
            self.heat.resize(TRACE_SLOTS, 0);
        }
        let h = &mut self.heat[Self::slot_of(entry, hist)];
        *h = h.saturating_add(1);
        if *h >= self.threshold {
            *h = 0;
            true
        } else {
            false
        }
    }

    /// Insert a finished recording (evicting any slot collision).
    pub fn insert(&mut self, rec: TraceRec) {
        if self.slots.is_empty() {
            self.slots.resize(TRACE_SLOTS, None);
        }
        let lo = rec.blocks.iter().map(|b| b.entry).min().unwrap_or(0);
        let hi = rec.blocks.iter().map(|b| b.end).max().unwrap_or(0);
        let trace = Arc::new(SuperTrace {
            entry: rec.entry,
            hist: rec.hist,
            blocks: rec.blocks,
            total_insts: rec.total,
            lo,
            hi,
        });
        self.built += 1;
        let slot = Self::slot_of(trace.entry, trace.hist);
        if self.slots[slot].is_some() {
            self.invalidated += 1;
        } else {
            self.occupied.push(slot as u32);
        }
        self.slots[slot] = Some(trace);
    }

    /// Count a guard misprediction or mid-trace self-modification exit.
    #[inline]
    pub fn note_side_exit(&mut self) {
        self.side_exits += 1;
    }

    /// Drop every trace with a block covering any of `addrs` (the
    /// executable bytes just written, straight from the memory journal).
    pub fn invalidate_writes(&mut self, addrs: &[u32]) {
        if self.occupied.is_empty() || addrs.is_empty() {
            return;
        }
        let slots = &mut self.slots;
        let invalidated = &mut self.invalidated;
        self.occupied.retain(|&i| {
            let slot = &mut slots[i as usize];
            match slot {
                Some(t) if addrs.iter().any(|&a| t.covers(a)) => {
                    *invalidated += 1;
                    *slot = None;
                    false
                }
                other => other.is_some(),
            }
        });
    }

    /// Drop everything (lineage breaks, decoder swaps, engine toggles).
    /// Heat survives a targeted invalidation but not a clear.
    pub fn clear(&mut self) {
        self.invalidated += self.occupied.len() as u64;
        self.slots.clear();
        self.heat.clear();
        self.occupied.clear();
    }

    /// Lower (or raise) the promotion threshold — tests use `1` to
    /// force trace formation on the second dispatch.
    pub fn set_threshold(&mut self, threshold: u16) {
        self.threshold = threshold.max(1);
    }

    pub fn stats(&self) -> TraceStats {
        TraceStats {
            built: self.built,
            hits: self.hits,
            side_exits: self.side_exits,
            invalidated: self.invalidated,
            cached: self.occupied.len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block::LInst;
    use crate::inst::{Inst, Op};

    fn block(entry: u32, nbytes: u32) -> Arc<Block> {
        let inst = Inst::new(Op::Nop);
        Arc::new(Block {
            entry,
            end: entry as u64 + nbytes as u64,
            insts: vec![LInst::new(entry, entry.wrapping_add(1), inst)],
            reads_icount: false,
            writes: false,
        })
    }

    fn rec(entry: u32, hist: u8, blocks: Vec<Arc<Block>>) -> TraceRec {
        let total = blocks.iter().map(|b| b.insts.len() as u64).sum();
        TraceRec {
            entry,
            hist,
            blocks,
            total,
        }
    }

    #[test]
    fn keyed_by_entry_and_history() {
        let mut c = TraceCache::default();
        c.insert(rec(0x1000, 3, vec![block(0x1000, 4), block(0x2000, 4)]));
        assert!(c.get(0x1000, 3).is_some());
        assert!(c.get(0x1000, 4).is_none(), "other history, other trace");
        assert!(c.get(0x2000, 3).is_none());
        let s = c.stats();
        assert_eq!((s.built, s.hits, s.cached), (1, 1, 1));
    }

    #[test]
    fn heat_crosses_threshold_once_then_resets() {
        let mut c = TraceCache::default();
        c.set_threshold(3);
        assert!(!c.heat_up(0x1000, 0));
        assert!(!c.heat_up(0x1000, 0));
        assert!(c.heat_up(0x1000, 0));
        assert!(!c.heat_up(0x1000, 0), "counter must reset on promotion");
    }

    #[test]
    fn invalidation_hits_tail_blocks_too() {
        let mut c = TraceCache::default();
        c.insert(rec(0x1000, 0, vec![block(0x1000, 4), block(0x3000, 4)]));
        // A write inside the *tail* block must drop the whole trace.
        c.invalidate_writes(&[0x3002]);
        assert!(c.get(0x1000, 0).is_none());
        assert_eq!(c.stats().invalidated, 1);
        // Writes outside every linked block are free.
        c.insert(rec(0x1000, 0, vec![block(0x1000, 4)]));
        c.invalidate_writes(&[0x9000]);
        assert!(c.get(0x1000, 0).is_some());
    }
}
