//! # fisec-asm — a programmatic two-pass IA-32 assembler
//!
//! The mini-C compiler (and hand-written startup/demo code) emits
//! instructions through [`Assembler`], which performs:
//!
//! * label management with forward references;
//! * **branch relaxation**: conditional and unconditional branches start in
//!   their short (rel8) form and are widened to the long (rel32) form only
//!   when the displacement requires it — exactly the mix a real compiler
//!   produces, which matters here because the study's Tables 2/3 classify
//!   injected errors by *2-byte vs 6-byte* conditional branch encodings;
//! * a **data segment** builder with named symbols (globals, string
//!   literals) and symbol-relative immediate/displacement fix-ups;
//! * a **function symbol table** with byte ranges, which the fault injector
//!   uses to select "the branch instructions inside `user()` and `pass()`"
//!   precisely as the paper did.
//!
//! ```
//! use fisec_asm::Assembler;
//! use fisec_x86::{Cond, Inst, Op, Operand, Reg32};
//!
//! let mut a = Assembler::new();
//! a.begin_func("answer");
//! a.emit(Inst::new(Op::Mov).dst(Operand::Reg(Reg32::Eax)).src(Operand::Imm(42)));
//! a.emit(Inst::new(Op::Ret(0)));
//! a.end_func();
//! let img = a.assemble(0x0804_8000, 0x0810_0000)?;
//! assert_eq!(img.func("answer").unwrap().start, 0x0804_8000);
//! # Ok::<(), fisec_asm::AsmError>(())
//! ```

mod image;

pub use image::{DataSymbol, FuncSymbol, Image, SymbolTable};

use fisec_x86::{encode, Cond, Inst, Op, Operand, Reg32};
use std::collections::HashMap;
use std::fmt;

/// A code label (block-scoped jump target).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Label(usize);

/// A data-segment symbol.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct DataRef(usize);

/// Which operand field of a templated instruction receives a resolved
/// symbol address.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SymSlot {
    /// The `src` immediate.
    ImmSrc,
    /// The `dst` immediate (e.g. `push $sym`).
    ImmDst,
    /// The displacement of the `dst` memory operand.
    MemDst,
    /// The displacement of the `src` memory operand.
    MemSrc,
}

/// A symbol reference: a code label or a data symbol, plus an addend.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SymRef {
    target: SymTarget,
    addend: i32,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SymTarget {
    Code(Label),
    Data(DataRef),
}

impl SymRef {
    /// Reference to a code label.
    pub fn code(l: Label) -> SymRef {
        SymRef {
            target: SymTarget::Code(l),
            addend: 0,
        }
    }

    /// Reference to a data symbol.
    pub fn data(d: DataRef) -> SymRef {
        SymRef {
            target: SymTarget::Data(d),
            addend: 0,
        }
    }

    /// Add a byte offset to the resolved address.
    pub fn offset(mut self, addend: i32) -> SymRef {
        self.addend = self.addend.wrapping_add(addend);
        self
    }
}

/// Assembly errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AsmError {
    /// A label was referenced but never bound.
    UnboundLabel(usize),
    /// A function was called but never defined.
    UnknownFunction(String),
    /// A function or data symbol name was defined twice.
    DuplicateSymbol(String),
    /// `begin_func`/`end_func` mismatch.
    UnbalancedFunc(String),
    /// An instruction failed to encode.
    Encode(String),
}

impl fmt::Display for AsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AsmError::UnboundLabel(i) => write!(f, "label {i} was never bound"),
            AsmError::UnknownFunction(n) => write!(f, "call to undefined function `{n}`"),
            AsmError::DuplicateSymbol(n) => write!(f, "duplicate symbol `{n}`"),
            AsmError::UnbalancedFunc(n) => write!(f, "unbalanced begin/end_func around `{n}`"),
            AsmError::Encode(e) => write!(f, "encode error: {e}"),
        }
    }
}

impl std::error::Error for AsmError {}

#[derive(Debug, Clone)]
enum Item {
    /// A fixed instruction (no symbols, no relaxation).
    Fixed(Inst),
    /// A fixed instruction whose operand is patched with a symbol address.
    WithSym {
        inst: Inst,
        slot: SymSlot,
        sym: SymRef,
    },
    /// A conditional or unconditional branch to a label (relaxed).
    Branch { cond: Option<Cond>, target: Label },
    /// A call to a named function (always rel32).
    CallName(String),
    /// A call to a label (always rel32).
    CallLabel(Label),
    /// Bind a label here.
    Bind(Label),
    /// Raw bytes in the text stream (used only outside functions).
    Bytes(Vec<u8>),
}

#[derive(Debug, Clone)]
struct DataItem {
    name: String,
    bytes: Vec<u8>,
    align: u32,
}

#[derive(Debug, Clone)]
struct FuncSpan {
    name: String,
    start_item: usize,
    end_item: usize, // exclusive; usize::MAX while open
}

/// The assembler. See the crate docs for an example.
#[derive(Debug, Clone, Default)]
pub struct Assembler {
    items: Vec<Item>,
    n_labels: usize,
    data: Vec<DataItem>,
    data_names: HashMap<String, usize>,
    funcs: Vec<FuncSpan>,
    func_names: HashMap<String, usize>,
    open_func: Option<usize>,
    next_lit: usize,
}

impl Assembler {
    /// A fresh, empty assembler.
    pub fn new() -> Assembler {
        Assembler::default()
    }

    /// Create an unbound label.
    pub fn new_label(&mut self) -> Label {
        let l = Label(self.n_labels);
        self.n_labels += 1;
        l
    }

    /// Bind `label` at the current position.
    pub fn bind(&mut self, label: Label) {
        self.items.push(Item::Bind(label));
    }

    /// Emit a fixed instruction.
    pub fn emit(&mut self, inst: Inst) {
        self.items.push(Item::Fixed(inst));
    }

    /// Emit an instruction whose `slot` operand is patched with the address
    /// of `sym` (plus its addend) at assembly time. The templated operand
    /// must already hold a placeholder (`Operand::Imm`/`Operand::Mem`).
    pub fn emit_sym(&mut self, inst: Inst, slot: SymSlot, sym: SymRef) {
        self.items.push(Item::WithSym { inst, slot, sym });
    }

    /// Emit a conditional branch to `label` (relaxed to rel8 or rel32).
    pub fn jcc(&mut self, cond: Cond, label: Label) {
        self.items.push(Item::Branch {
            cond: Some(cond),
            target: label,
        });
    }

    /// Emit an unconditional jump to `label` (relaxed).
    pub fn jmp(&mut self, label: Label) {
        self.items.push(Item::Branch {
            cond: None,
            target: label,
        });
    }

    /// Emit a call to the named function (defined before or after this
    /// point via [`Assembler::begin_func`]).
    pub fn call(&mut self, func: &str) {
        self.items.push(Item::CallName(func.to_string()));
    }

    /// Emit a call to a label.
    pub fn call_label(&mut self, label: Label) {
        self.items.push(Item::CallLabel(label));
    }

    /// Emit raw bytes into the text stream. Only permitted outside
    /// functions (the injector decodes function bodies linearly).
    ///
    /// # Panics
    /// Panics if called between `begin_func` and `end_func`.
    pub fn raw_bytes(&mut self, bytes: Vec<u8>) {
        assert!(
            self.open_func.is_none(),
            "raw bytes are not allowed inside functions"
        );
        self.items.push(Item::Bytes(bytes));
    }

    /// Start a named function at the current position.
    pub fn begin_func(&mut self, name: &str) {
        let idx = self.funcs.len();
        self.funcs.push(FuncSpan {
            name: name.to_string(),
            start_item: self.items.len(),
            end_item: usize::MAX,
        });
        self.func_names.insert(name.to_string(), idx);
        self.open_func = Some(idx);
    }

    /// Close the currently open function.
    ///
    /// # Panics
    /// Panics if no function is open.
    pub fn end_func(&mut self) {
        let idx = self.open_func.take().expect("end_func without begin_func");
        self.funcs[idx].end_item = self.items.len();
    }

    /// Define a named data symbol with explicit alignment (power of two).
    pub fn data(&mut self, name: &str, bytes: Vec<u8>, align: u32) -> DataRef {
        let idx = self.data.len();
        self.data.push(DataItem {
            name: name.to_string(),
            bytes,
            align: align.max(1),
        });
        self.data_names.insert(name.to_string(), idx);
        DataRef(idx)
    }

    /// Define a zero-initialized data symbol (bss-style).
    pub fn data_zeroed(&mut self, name: &str, len: u32, align: u32) -> DataRef {
        self.data(name, vec![0; len as usize], align)
    }

    /// Intern a NUL-terminated string literal; returns its symbol.
    pub fn cstr(&mut self, s: &str) -> DataRef {
        let name = format!(".Lstr{}", self.next_lit);
        self.next_lit += 1;
        let mut bytes = s.as_bytes().to_vec();
        bytes.push(0);
        self.data(&name, bytes, 1)
    }

    /// Look up a previously defined data symbol by name.
    pub fn data_ref(&self, name: &str) -> Option<DataRef> {
        self.data_names.get(name).map(|i| DataRef(*i))
    }

    /// Assemble into an [`Image`] with the given segment bases.
    ///
    /// # Errors
    /// [`AsmError`] on unbound labels, unknown functions, duplicate
    /// symbols, unbalanced functions, or unencodable instructions.
    pub fn assemble(&self, text_base: u32, data_base: u32) -> Result<Image, AsmError> {
        // Validate.
        if let Some(idx) = self.open_func {
            return Err(AsmError::UnbalancedFunc(self.funcs[idx].name.clone()));
        }
        let mut seen = HashMap::new();
        for f in &self.funcs {
            if seen.insert(f.name.clone(), ()).is_some() {
                return Err(AsmError::DuplicateSymbol(f.name.clone()));
            }
        }
        for d in &self.data {
            if seen.insert(d.name.clone(), ()).is_some() {
                return Err(AsmError::DuplicateSymbol(d.name.clone()));
            }
        }

        // Lay out data.
        let mut data_bytes: Vec<u8> = Vec::new();
        let mut data_addrs: Vec<u32> = Vec::with_capacity(self.data.len());
        for d in &self.data {
            let pos = data_bytes.len() as u32;
            let aligned = pos.div_ceil(d.align) * d.align;
            data_bytes.resize(aligned as usize, 0);
            data_addrs.push(data_base + aligned);
            data_bytes.extend_from_slice(&d.bytes);
        }

        // Iterative relaxation: every Branch item starts short and may be
        // widened. Widening only grows, so this terminates.
        let n = self.items.len();
        let mut wide = vec![false; n];
        let mut lens = vec![0u32; n];
        let mut offsets = vec![0u32; n + 1];
        let mut label_off: Vec<Option<u32>> = vec![None; self.n_labels];

        // Pre-measure fixed items once (symbol-templated instructions get a
        // length-stable placeholder: any text/data address is a full imm32).
        let placeholder = 0x0800_0000u32;
        for (i, item) in self.items.iter().enumerate() {
            lens[i] = match item {
                Item::Fixed(inst) => self.encode_len(inst)?,
                Item::WithSym { inst, slot, .. } => {
                    let patched = patch(inst, *slot, placeholder as i32);
                    self.encode_len(&patched)?
                }
                Item::Branch { .. } => 2,
                Item::CallName(_) | Item::CallLabel(_) => 5,
                Item::Bind(_) => 0,
                Item::Bytes(b) => b.len() as u32,
            };
        }

        loop {
            // Compute offsets and label positions.
            let mut pos = 0u32;
            for (i, item) in self.items.iter().enumerate() {
                offsets[i] = pos;
                if let Item::Bind(l) = item {
                    label_off[l.0] = Some(pos);
                }
                pos += lens[i];
            }
            offsets[n] = pos;

            // Widen branches that do not fit.
            let mut changed = false;
            for (i, item) in self.items.iter().enumerate() {
                if let Item::Branch { cond, target } = item {
                    if wide[i] {
                        continue;
                    }
                    let t = label_off[target.0].ok_or(AsmError::UnboundLabel(target.0))?;
                    let end = offsets[i] + lens[i];
                    let disp = t as i64 - end as i64;
                    if !(-128..=127).contains(&disp) {
                        wide[i] = true;
                        lens[i] = if cond.is_some() { 6 } else { 5 };
                        changed = true;
                    }
                }
            }
            if !changed {
                break;
            }
        }

        // Resolve function entry addresses for calls.
        let func_addr = |name: &str| -> Result<u32, AsmError> {
            let idx = self
                .func_names
                .get(name)
                .ok_or_else(|| AsmError::UnknownFunction(name.to_string()))?;
            Ok(text_base + offsets[self.funcs[*idx].start_item])
        };
        let resolve = |sym: &SymRef| -> Result<u32, AsmError> {
            let base = match sym.target {
                SymTarget::Code(l) => {
                    text_base + label_off[l.0].ok_or(AsmError::UnboundLabel(l.0))?
                }
                SymTarget::Data(d) => data_addrs[d.0],
            };
            Ok(base.wrapping_add(sym.addend as u32))
        };

        // Final emission.
        let mut text: Vec<u8> = Vec::with_capacity(offsets[n] as usize);
        for (i, item) in self.items.iter().enumerate() {
            let end = offsets[i] + lens[i];
            match item {
                Item::Bind(_) => {}
                Item::Bytes(b) => text.extend_from_slice(b),
                Item::Fixed(inst) => {
                    let bytes = encode(inst).map_err(|e| AsmError::Encode(e.to_string()))?;
                    debug_assert_eq!(bytes.len() as u32, lens[i]);
                    text.extend_from_slice(&bytes);
                }
                Item::WithSym { inst, slot, sym } => {
                    let addr = resolve(sym)?;
                    let patched = patch(inst, *slot, addr as i32);
                    let bytes = encode(&patched).map_err(|e| AsmError::Encode(e.to_string()))?;
                    debug_assert_eq!(bytes.len() as u32, lens[i]);
                    text.extend_from_slice(&bytes);
                }
                Item::Branch { cond, target } => {
                    let t = label_off[target.0].ok_or(AsmError::UnboundLabel(target.0))?;
                    let disp = t as i64 - end as i64;
                    if wide[i] {
                        match cond {
                            Some(c) => {
                                text.push(0x0F);
                                text.push(0x80 | *c as u8);
                                text.extend_from_slice(&(disp as i32).to_le_bytes());
                            }
                            None => {
                                text.push(0xE9);
                                text.extend_from_slice(&(disp as i32).to_le_bytes());
                            }
                        }
                    } else {
                        match cond {
                            Some(c) => text.push(0x70 | *c as u8),
                            None => text.push(0xEB),
                        }
                        text.push(disp as i8 as u8);
                    }
                }
                Item::CallName(name) => {
                    let target = func_addr(name)?;
                    let disp = target as i64 - (text_base + end) as i64;
                    text.push(0xE8);
                    text.extend_from_slice(&(disp as i32).to_le_bytes());
                }
                Item::CallLabel(l) => {
                    let t = label_off[l.0].ok_or(AsmError::UnboundLabel(l.0))?;
                    let disp = t as i64 - end as i64;
                    text.push(0xE8);
                    text.extend_from_slice(&(disp as i32).to_le_bytes());
                }
            }
        }

        // Symbol tables.
        let funcs = self
            .funcs
            .iter()
            .map(|f| FuncSymbol {
                name: f.name.clone(),
                start: text_base + offsets[f.start_item],
                end: text_base + offsets[f.end_item],
            })
            .collect();
        let data_syms = self
            .data
            .iter()
            .zip(&data_addrs)
            .map(|(d, a)| DataSymbol {
                name: d.name.clone(),
                addr: *a,
                len: d.bytes.len() as u32,
            })
            .collect();

        Ok(Image {
            text,
            data: data_bytes,
            text_base,
            data_base,
            symbols: SymbolTable {
                funcs,
                data: data_syms,
            },
        })
    }

    fn encode_len(&self, inst: &Inst) -> Result<u32, AsmError> {
        encode(inst)
            .map(|b| b.len() as u32)
            .map_err(|e| AsmError::Encode(e.to_string()))
    }
}

/// Substitute a resolved address into the chosen operand slot.
fn patch(inst: &Inst, slot: SymSlot, value: i32) -> Inst {
    let mut i = *inst;
    match slot {
        SymSlot::ImmSrc => i.src = Some(Operand::Imm(value as u32 as i64)),
        SymSlot::ImmDst => i.dst = Some(Operand::Imm(value as u32 as i64)),
        SymSlot::MemDst => {
            if let Some(Operand::Mem(mut m)) = i.dst {
                m.disp = m.disp.wrapping_add(value);
                i.dst = Some(Operand::Mem(m));
            }
        }
        SymSlot::MemSrc => {
            if let Some(Operand::Mem(mut m)) = i.src {
                m.disp = m.disp.wrapping_add(value);
                i.src = Some(Operand::Mem(m));
            }
        }
    }
    i
}

/// Convenience: `mov reg, $imm`.
pub fn mov_ri(r: Reg32, v: i64) -> Inst {
    Inst::new(Op::Mov).dst(Operand::Reg(r)).src(Operand::Imm(v))
}

#[cfg(test)]
mod tests {
    use super::*;
    use fisec_x86::{decode, MemOperand, OpSize};

    const TB: u32 = 0x0804_8000;
    const DB: u32 = 0x0810_0000;

    #[test]
    fn simple_function_assembles() {
        let mut a = Assembler::new();
        a.begin_func("f");
        a.emit(mov_ri(Reg32::Eax, 42));
        a.emit(Inst::new(Op::Ret(0)));
        a.end_func();
        let img = a.assemble(TB, DB).unwrap();
        assert_eq!(img.text, vec![0xB8, 42, 0, 0, 0, 0xC3]);
        let f = img.func("f").unwrap();
        assert_eq!(f.start, TB);
        assert_eq!(f.end, TB + 6);
    }

    #[test]
    fn short_branch_stays_short() {
        let mut a = Assembler::new();
        let l = a.new_label();
        a.begin_func("f");
        a.jcc(Cond::E, l);
        a.emit(Inst::new(Op::Nop));
        a.bind(l);
        a.emit(Inst::new(Op::Ret(0)));
        a.end_func();
        let img = a.assemble(TB, DB).unwrap();
        assert_eq!(img.text, vec![0x74, 0x01, 0x90, 0xC3]);
    }

    #[test]
    fn long_branch_widens() {
        let mut a = Assembler::new();
        let l = a.new_label();
        a.begin_func("f");
        a.jcc(Cond::Ne, l);
        for _ in 0..200 {
            a.emit(Inst::new(Op::Nop));
        }
        a.bind(l);
        a.emit(Inst::new(Op::Ret(0)));
        a.end_func();
        let img = a.assemble(TB, DB).unwrap();
        assert_eq!(&img.text[..2], &[0x0F, 0x85]);
        let d = i32::from_le_bytes(img.text[2..6].try_into().unwrap());
        assert_eq!(d, 200);
    }

    #[test]
    fn backward_branch() {
        let mut a = Assembler::new();
        let top = a.new_label();
        a.begin_func("f");
        a.bind(top);
        a.emit(Inst::new(Op::Dec).dst(Operand::Reg(Reg32::Ecx)));
        a.jcc(Cond::Ne, top);
        a.emit(Inst::new(Op::Ret(0)));
        a.end_func();
        let img = a.assemble(TB, DB).unwrap();
        // dec ecx (0x49), jne -3 (0x75 0xFD), ret
        assert_eq!(img.text, vec![0x49, 0x75, 0xFD, 0xC3]);
    }

    #[test]
    fn cascaded_relaxation() {
        let mut a = Assembler::new();
        let la = a.new_label();
        let lb = a.new_label();
        a.begin_func("f");
        a.jcc(Cond::E, la);
        for _ in 0..120 {
            a.emit(Inst::new(Op::Nop));
        }
        a.jcc(Cond::Ne, lb);
        for _ in 0..5 {
            a.emit(Inst::new(Op::Nop));
        }
        a.bind(la);
        for _ in 0..130 {
            a.emit(Inst::new(Op::Nop));
        }
        a.bind(lb);
        a.emit(Inst::new(Op::Ret(0)));
        a.end_func();
        let img = a.assemble(TB, DB).unwrap();
        // Verify by decoding: the stream must decode linearly and contain
        // exactly two conditional branches.
        let mut pos = 0usize;
        let mut branch_count = 0;
        while pos < img.text.len() {
            let i = decode(&img.text[pos..]);
            assert!(!matches!(i.op, Op::Invalid(_)), "bad decode at {pos}");
            if i.is_cond_branch() {
                branch_count += 1;
            }
            pos += i.len as usize;
        }
        assert_eq!(branch_count, 2);
    }

    #[test]
    fn call_by_name_forward_and_backward() {
        let mut a = Assembler::new();
        a.begin_func("main");
        a.call("helper");
        a.emit(Inst::new(Op::Ret(0)));
        a.end_func();
        a.begin_func("helper");
        a.emit(mov_ri(Reg32::Eax, 1));
        a.emit(Inst::new(Op::Ret(0)));
        a.end_func();
        let img = a.assemble(TB, DB).unwrap();
        assert_eq!(img.text[0], 0xE8);
        assert_eq!(i32::from_le_bytes(img.text[1..5].try_into().unwrap()), 1);
        assert_eq!(img.func("helper").unwrap().start, TB + 6);
    }

    #[test]
    fn unknown_function_errors() {
        let mut a = Assembler::new();
        a.begin_func("main");
        a.call("nope");
        a.end_func();
        assert_eq!(
            a.assemble(TB, DB).unwrap_err(),
            AsmError::UnknownFunction("nope".into())
        );
    }

    #[test]
    fn unbound_label_errors() {
        let mut a = Assembler::new();
        let l = a.new_label();
        a.begin_func("main");
        a.jmp(l);
        a.end_func();
        assert!(matches!(a.assemble(TB, DB), Err(AsmError::UnboundLabel(_))));
    }

    #[test]
    fn unbalanced_func_errors() {
        let mut a = Assembler::new();
        a.begin_func("main");
        assert!(matches!(
            a.assemble(TB, DB),
            Err(AsmError::UnbalancedFunc(_))
        ));
    }

    #[test]
    fn duplicate_symbol_errors() {
        let mut a = Assembler::new();
        a.begin_func("f");
        a.end_func();
        a.begin_func("f");
        a.end_func();
        assert!(matches!(
            a.assemble(TB, DB),
            Err(AsmError::DuplicateSymbol(_))
        ));
    }

    #[test]
    fn data_symbols_and_alignment() {
        let mut a = Assembler::new();
        let s1 = a.data("greeting", b"hi\0".to_vec(), 1);
        let s2 = a.data("counter", vec![0; 4], 4);
        a.begin_func("f");
        a.emit_sym(mov_ri(Reg32::Eax, 0), SymSlot::ImmSrc, SymRef::data(s1));
        a.emit_sym(
            Inst::new(Op::Mov)
                .dst(Operand::Mem(MemOperand::abs(0)))
                .src(Operand::Reg(Reg32::Eax)),
            SymSlot::MemDst,
            SymRef::data(s2),
        );
        a.emit(Inst::new(Op::Ret(0)));
        a.end_func();
        let img = a.assemble(TB, DB).unwrap();
        let g = img.data_symbol("greeting").unwrap();
        assert_eq!(g.addr, DB);
        assert_eq!(g.len, 3);
        let cnt = img.data_symbol("counter").unwrap();
        assert_eq!(cnt.addr, DB + 4); // aligned up from 3
        assert_eq!(img.text[0], 0xB8);
        assert_eq!(u32::from_le_bytes(img.text[1..5].try_into().unwrap()), DB);
        let i = decode(&img.text[5..]);
        assert_eq!(i.dst, Some(Operand::Mem(MemOperand::abs(DB + 4))));
        assert_eq!(img.data.len(), 8);
        assert_eq!(&img.data[..3], b"hi\0");
    }

    #[test]
    fn cstr_interning_is_unique() {
        let mut a = Assembler::new();
        let s1 = a.cstr("alpha");
        let s2 = a.cstr("beta");
        assert_ne!(s1, s2);
        a.begin_func("f");
        a.emit(Inst::new(Op::Ret(0)));
        a.end_func();
        let img = a.assemble(TB, DB).unwrap();
        assert_eq!(&img.data[..6], b"alpha\0");
        assert_eq!(&img.data[6..11], b"beta\0");
    }

    #[test]
    fn symref_offset_applies() {
        let mut a = Assembler::new();
        let tbl = a.data_zeroed("tbl", 64, 4);
        a.begin_func("f");
        a.emit_sym(
            mov_ri(Reg32::Eax, 0),
            SymSlot::ImmSrc,
            SymRef::data(tbl).offset(16),
        );
        a.emit(Inst::new(Op::Ret(0)));
        a.end_func();
        let img = a.assemble(TB, DB).unwrap();
        assert_eq!(
            u32::from_le_bytes(img.text[1..5].try_into().unwrap()),
            DB + 16
        );
    }

    #[test]
    fn function_ranges_decode_cleanly() {
        // Whatever we assemble must decode linearly instruction by
        // instruction — the property the injector depends on.
        let mut a = Assembler::new();
        let done = a.new_label();
        let lp = a.new_label();
        a.begin_func("busy");
        a.emit(mov_ri(Reg32::Ecx, 10));
        a.bind(lp);
        a.emit(Inst::new(Op::Dec).dst(Operand::Reg(Reg32::Ecx)));
        a.emit(
            Inst::new(Op::Cmp)
                .dst(Operand::Reg(Reg32::Ecx))
                .src(Operand::Imm(0)),
        );
        a.jcc(Cond::E, done);
        a.jmp(lp);
        a.bind(done);
        a.emit(Inst::new(Op::Ret(0)));
        a.end_func();
        let img = a.assemble(TB, DB).unwrap();
        let f = img.func("busy").unwrap();
        let mut pos = (f.start - TB) as usize;
        let end = (f.end - TB) as usize;
        let mut saw_ret = false;
        while pos < end {
            let i = decode(&img.text[pos..]);
            assert!(!matches!(i.op, Op::Invalid(_)));
            if matches!(i.op, Op::Ret(_)) {
                saw_ret = true;
            }
            pos += i.len as usize;
        }
        assert_eq!(pos, end);
        assert!(saw_ret);
    }

    #[test]
    fn word_size_ops_encode_with_prefix() {
        let mut a = Assembler::new();
        a.begin_func("f");
        a.emit(
            Inst::new(Op::Mov)
                .dst(Operand::Reg16(fisec_x86::Reg16::Ax))
                .src(Operand::Imm(0x1234))
                .size(OpSize::Word),
        );
        a.emit(Inst::new(Op::Ret(0)));
        a.end_func();
        let img = a.assemble(TB, DB).unwrap();
        assert_eq!(img.text[0], 0x66);
    }

    #[test]
    fn call_label_works() {
        let mut a = Assembler::new();
        let target = a.new_label();
        a.begin_func("f");
        a.call_label(target);
        a.emit(Inst::new(Op::Ret(0)));
        a.bind(target);
        a.emit(Inst::new(Op::Ret(0)));
        a.end_func();
        let img = a.assemble(TB, DB).unwrap();
        assert_eq!(img.text[0], 0xE8);
        assert_eq!(i32::from_le_bytes(img.text[1..5].try_into().unwrap()), 1);
    }

    #[test]
    fn symref_code_resolves_text_address() {
        let mut a = Assembler::new();
        let here = a.new_label();
        a.begin_func("f");
        a.bind(here);
        a.emit_sym(mov_ri(Reg32::Eax, 0), SymSlot::ImmSrc, SymRef::code(here));
        a.emit(Inst::new(Op::Ret(0)));
        a.end_func();
        let img = a.assemble(TB, DB).unwrap();
        assert_eq!(u32::from_le_bytes(img.text[1..5].try_into().unwrap()), TB);
    }
}
