//! Telemetry differential tests: the traced campaign must emit exactly
//! one run event per injection run with tallies matching the campaign
//! result in both execution modes, produce results bit-identical to the
//! untraced engine, and round-trip through the JSONL trace format back
//! into the same Table 1.

use fisec_apps::AppSpec;
use fisec_core::{
    run_campaign, run_campaign_traced, tables, trace, CampaignConfig, CampaignResult,
    EncodingScheme, ExecutionMode,
};
use fisec_inject::OutcomeClass;
use fisec_telemetry::{metric, JsonlSink, MemorySink, Telemetry, TraceEvent};
use std::sync::Arc;

fn cfg(mode: ExecutionMode) -> CampaignConfig {
    CampaignConfig {
        scheme: EncodingScheme::Baseline,
        mode,
        ..CampaignConfig::default()
    }
}

/// The event stream must carry the whole campaign: header first,
/// trailer last, one run event per experiment, with per-client
/// per-outcome tallies equal to the result's counts.
fn assert_stream_matches(events: &[TraceEvent], result: &CampaignResult) {
    assert!(
        matches!(events.first(), Some(TraceEvent::Campaign(_))),
        "stream must open with a campaign header"
    );
    assert!(
        matches!(events.last(), Some(TraceEvent::CampaignEnd(_))),
        "stream must close with a campaign trailer"
    );
    let runs: Vec<_> = events
        .iter()
        .filter_map(|e| match e {
            TraceEvent::Run(r) => Some(r),
            _ => None,
        })
        .collect();
    assert_eq!(
        runs.len(),
        result.runs_per_client * result.clients.len(),
        "exactly one event per injection run"
    );
    for (ci, client) in result.clients.iter().enumerate() {
        for class in OutcomeClass::ALL {
            let from_events = runs
                .iter()
                .filter(|r| r.client == ci && r.outcome == class.abbrev())
                .count();
            assert_eq!(
                from_events,
                client.counts.get(class),
                "{} {} tally mismatch between events and result",
                client.client,
                class.abbrev()
            );
        }
    }
    if let Some(TraceEvent::CampaignEnd(end)) = events.last() {
        assert_eq!(end.runs as usize, runs.len());
        assert_eq!(
            end.na_prefilter_runs as usize,
            runs.iter().filter(|r| r.na_prefilter).count()
        );
    }
}

#[test]
fn traced_ftpd_campaign_matches_result_in_both_modes() {
    let app = AppSpec::ftpd();
    let untraced = run_campaign(&app, &cfg(ExecutionMode::Snapshot));
    for mode in [ExecutionMode::Snapshot, ExecutionMode::FromScratch] {
        let sink = Arc::new(MemorySink::new());
        let tel = Telemetry::new(sink.clone(), false);
        let result = run_campaign_traced(&app, &cfg(mode), &tel);
        assert_stream_matches(&sink.events(), &result);
        // Telemetry must not perturb the experiment.
        for (t, u) in result.clients.iter().zip(&untraced.clients) {
            assert_eq!(t.counts, u.counts, "{mode:?} diverged from untraced");
            assert_eq!(t.records, u.records, "{mode:?} records diverged");
        }
        // The metrics registry agrees with the event stream.
        let snap = tel.metrics.snapshot();
        assert_eq!(
            snap.counter(metric::RUNS) as usize,
            result.runs_per_client * result.clients.len()
        );
        if mode == ExecutionMode::Snapshot {
            assert!(snap.counter(metric::GROUPS) > 0);
            assert!(snap.histogram(metric::GROUP_SIZE).is_some());
        }
        assert!(snap.histogram(metric::ICOUNT).is_some());
    }
}

#[test]
fn jsonl_trace_round_trips_to_identical_table1() {
    let app = AppSpec::ftpd();
    let dir = std::env::temp_dir().join(format!("fisec-telemetry-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("ftpd.jsonl");

    let sink = Arc::new(JsonlSink::create(&path).unwrap());
    let tel = Telemetry::new(sink, false);
    let live = run_campaign_traced(&app, &cfg(ExecutionMode::Snapshot), &tel);
    tel.sink.flush();

    let replay = trace::read_trace(&path).unwrap();
    assert_eq!(replay.campaigns.len(), 1);
    let replayed = &replay.campaigns[0].result;
    assert_eq!(
        tables::render_table1(&[replayed]),
        tables::render_table1(&[&live]),
        "replayed Table 1 must be byte-identical to the live one"
    );
    // The stats rendering leads with that same table.
    let stats = trace::render_stats(&replay);
    assert!(
        stats.starts_with(&tables::render_table1(&[&live])),
        "{stats}"
    );

    std::fs::remove_dir_all(&dir).ok();
}
