//! Live campaign progress on stderr: runs/s, completion, ETA and the
//! running per-outcome tally.
//!
//! Workers report per *group* (not per run), so the meter's mutex is
//! coarse-grained; prints are additionally throttled to a few per
//! second so a fast campaign is not dominated by terminal writes.

use std::io::Write;
use std::sync::Mutex;
use std::time::Instant;

/// Outcome labels in tally order (Table 1 order).
pub const OUTCOME_LABELS: [&str; 5] = ["NA", "NM", "SD", "FSV", "BRK"];

/// Minimum interval between prints.
const PRINT_EVERY_MICROS: u64 = 250_000;

#[derive(Debug)]
struct State {
    label: String,
    total: u64,
    done: u64,
    groups: u64,
    outcomes: [u64; 5],
    started: Instant,
    last_print_micros: u64,
    printed: bool,
}

/// The live meter. Disabled instances are inert.
#[derive(Debug)]
pub struct Progress {
    enabled: bool,
    state: Mutex<State>,
}

impl Progress {
    /// New meter; when `enabled` is false every method is a no-op.
    pub fn new(enabled: bool) -> Progress {
        Progress {
            enabled,
            state: Mutex::new(State {
                label: String::new(),
                total: 0,
                done: 0,
                groups: 0,
                outcomes: [0; 5],
                started: Instant::now(),
                last_print_micros: 0,
                printed: false,
            }),
        }
    }

    /// Is the meter printing?
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// Start a new campaign of `total_runs` expected runs.
    ///
    /// # Panics
    /// If another reporter panicked (poisoned lock).
    pub fn begin(&self, label: &str, total_runs: u64) {
        if !self.enabled {
            return;
        }
        let mut st = self.state.lock().expect("no reporter panicked");
        st.label = label.to_string();
        st.total = total_runs;
        st.done = 0;
        st.groups = 0;
        st.outcomes = [0; 5];
        st.started = Instant::now();
        st.last_print_micros = 0;
        st.printed = false;
    }

    /// Record a finished batch: per-outcome run counts plus how many
    /// groups it closed. Prints at most every ~250 ms.
    ///
    /// # Panics
    /// If another reporter panicked (poisoned lock).
    pub fn add(&self, outcomes: [u64; 5], groups: u64) {
        if !self.enabled {
            return;
        }
        let mut st = self.state.lock().expect("no reporter panicked");
        for (t, d) in st.outcomes.iter_mut().zip(&outcomes) {
            *t += d;
        }
        st.done += outcomes.iter().sum::<u64>();
        st.groups += groups;
        let elapsed = st.started.elapsed().as_micros() as u64;
        if elapsed.saturating_sub(st.last_print_micros) >= PRINT_EVERY_MICROS {
            st.last_print_micros = elapsed;
            Progress::print(&mut st, elapsed);
        }
    }

    /// Print the final line (if anything was ever printed, end it with
    /// a newline so later stderr output starts clean).
    ///
    /// # Panics
    /// If another reporter panicked (poisoned lock).
    pub fn finish(&self) {
        if !self.enabled {
            return;
        }
        let mut st = self.state.lock().expect("no reporter panicked");
        let elapsed = st.started.elapsed().as_micros() as u64;
        Progress::print(&mut st, elapsed);
        if st.printed {
            eprintln!();
            st.printed = false;
        }
    }

    fn print(st: &mut State, elapsed_micros: u64) {
        let secs = (elapsed_micros as f64 / 1e6).max(1e-9);
        let rate = st.done as f64 / secs;
        let eta = if rate > 0.0 && st.total > st.done {
            (st.total - st.done) as f64 / rate
        } else {
            0.0
        };
        let pct = if st.total == 0 {
            100.0
        } else {
            st.done as f64 * 100.0 / st.total as f64
        };
        let mut tally = String::new();
        for (label, n) in OUTCOME_LABELS.iter().zip(&st.outcomes) {
            tally.push_str(&format!("  {label} {n}"));
        }
        eprint!(
            "\r{}: {}/{} runs ({pct:.1}%)  {} groups  {rate:.0} runs/s  ETA {eta:.1}s{tally}   ",
            st.label, st.done, st.total, st.groups
        );
        let _ = std::io::stderr().flush();
        st.printed = true;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_meter_is_inert() {
        let p = Progress::new(false);
        assert!(!p.enabled());
        p.begin("ftpd", 100);
        p.add([1, 2, 3, 4, 5], 1);
        p.finish();
        let st = p.state.lock().unwrap();
        assert_eq!(st.done, 0, "disabled meter must not accumulate");
    }

    #[test]
    fn tallies_accumulate_per_outcome() {
        // Enabled meter, but throttling keeps the test from printing
        // more than the final line to stderr.
        let p = Progress::new(true);
        p.begin("test", 30);
        p.add([10, 0, 0, 0, 0], 2);
        p.add([5, 5, 4, 0, 1], 3);
        {
            let st = p.state.lock().unwrap();
            assert_eq!(st.done, 25);
            assert_eq!(st.groups, 5);
            assert_eq!(st.outcomes, [15, 5, 4, 0, 1]);
        }
        p.finish();
    }

    #[test]
    fn begin_resets_between_campaigns() {
        let p = Progress::new(true);
        p.begin("a", 10);
        p.add([10, 0, 0, 0, 0], 1);
        p.begin("b", 20);
        let st = p.state.lock().unwrap();
        assert_eq!(st.done, 0);
        assert_eq!(st.total, 20);
        assert_eq!(st.label, "b");
    }
}
