//! The IA-32 interpreter.
//!
//! [`Machine`] couples a [`Cpu`] register file with a [`Memory`] address
//! space and executes decoded instructions one at a time. It surfaces three
//! kinds of events to its embedder (the simulated OS / the fault injector):
//! software interrupts (syscalls), faults (mapped to POSIX signal names),
//! and breakpoint hits. The instruction counter is architecturally precise —
//! the paper's Figure 4 (instructions between error activation and crash)
//! is measured with it.

use crate::block::{AluK, Block, BlockCache, BlockStats, LInst, UOp, MAX_BLOCK_INSTS};
use crate::decode::decode;
use crate::eflags::{AF, CF, DF, OF, PF, RESERVED1, SF, ZF};
use crate::flags;
use crate::inst::{
    Cond, Fault, Inst, InvalidKind, MemOperand, Op, OpSize, Operand, Reg8, RepKind, StrOp,
};
use crate::mem::Memory;
use crate::profiler::ExecProfile;
use crate::recorder::{edge_kind, Edge, EdgeKind, FlightRecorder, FlightTrace};
use crate::taint::{PropagationLog, TaintTracer};
use crate::trace::{SuperTrace, TraceCache, TraceRec, TraceStats, MAX_TRACE_BLOCKS};
use std::collections::HashSet;
use std::sync::Arc;

/// Register file and flags.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Cpu {
    /// EAX..EDI in IA-32 encoding order (index with [`crate::Reg32`]).
    pub regs: [u32; 8],
    /// Instruction pointer.
    pub eip: u32,
    /// Flags register.
    pub eflags: u32,
}

impl Default for Cpu {
    fn default() -> Cpu {
        Cpu {
            regs: [0; 8],
            eip: 0,
            eflags: RESERVED1,
        }
    }
}

impl Cpu {
    /// Fresh CPU with zeroed registers.
    pub fn new() -> Cpu {
        Cpu::default()
    }

    /// Read an 8-bit register.
    pub fn get8(&self, r: Reg8) -> u8 {
        let n = r as usize;
        if n < 4 {
            self.regs[n] as u8
        } else {
            (self.regs[n - 4] >> 8) as u8
        }
    }

    /// Write an 8-bit register.
    pub fn set8(&mut self, r: Reg8, v: u8) {
        let n = r as usize;
        if n < 4 {
            self.regs[n] = (self.regs[n] & !0xFF) | v as u32;
        } else {
            self.regs[n - 4] = (self.regs[n - 4] & !0xFF00) | ((v as u32) << 8);
        }
    }

    /// Evaluate a condition against the current flags.
    pub fn cond(&self, c: Cond) -> bool {
        let f = self.eflags;
        let cf = f & CF != 0;
        let zf = f & ZF != 0;
        let sf = f & SF != 0;
        let of = f & OF != 0;
        let pf = f & PF != 0;
        match c {
            Cond::O => of,
            Cond::No => !of,
            Cond::B => cf,
            Cond::Nb => !cf,
            Cond::E => zf,
            Cond::Ne => !zf,
            Cond::Be => cf || zf,
            Cond::A => !cf && !zf,
            Cond::S => sf,
            Cond::Ns => !sf,
            Cond::P => pf,
            Cond::Np => !pf,
            Cond::L => sf != of,
            Cond::Ge => sf == of,
            Cond::Le => zf || (sf != of),
            Cond::G => !zf && (sf == of),
        }
    }
}

/// Result of executing one instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StepEvent {
    /// Instruction executed normally.
    Executed,
    /// `int n` executed (EIP already points past it). `int 0x80` is the
    /// Linux syscall gate; the embedder services it and resumes.
    Syscall(u8),
    /// The instruction faulted; EIP still points at it.
    Fault(Fault),
}

/// Result of [`Machine::run_until_event`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunOutcome {
    /// Execution reached a breakpoint (before executing the instruction
    /// at this address).
    Breakpoint(u32),
    /// A software interrupt needs servicing.
    Syscall(u8),
    /// The program faulted (crash).
    Fault(Fault),
    /// The step budget was exhausted (runaway/hang detection).
    Budget,
}

/// Size of the decoded-instruction cache (direct-mapped, power of two).
const ICACHE_SIZE: usize = 4096;

#[derive(Debug, Clone, Copy)]
struct ICacheEntry {
    addr: u32,
    inst: Inst,
}

/// Retired-EIP coverage recorder: a dense bitmap — one bit per byte
/// address — spanning the executable regions, plus a spill set for EIPs
/// executed anywhere else (reachable only through rwx data regions or
/// wild jumps, both rare). The bitmap makes the per-instruction mark a
/// shift and an OR instead of a hash insert.
#[derive(Debug, Clone)]
struct Coverage {
    base: u32,
    bits: Vec<u64>,
    spill: HashSet<u32>,
}

impl Coverage {
    /// Size the bitmap over the span of `mem`'s executable regions as
    /// mapped right now (regions never move; later rwx byte writes don't
    /// change the map).
    fn new(mem: &Memory) -> Coverage {
        let mut lo = u64::MAX;
        let mut hi = 0u64;
        for r in mem.regions().filter(|r| r.perms().exec) {
            lo = lo.min(r.start() as u64);
            hi = hi.max(r.end());
        }
        let span = hi.saturating_sub(lo) as usize;
        Coverage {
            base: if span == 0 { 0 } else { lo as u32 },
            bits: vec![0u64; span.div_ceil(64)],
            spill: HashSet::new(),
        }
    }

    #[inline]
    fn insert(&mut self, eip: u32) {
        if let Some(off) = eip.checked_sub(self.base).map(|o| o as usize) {
            if let Some(word) = self.bits.get_mut(off / 64) {
                *word |= 1u64 << (off % 64);
                return;
            }
        }
        self.spill.insert(eip);
    }

    /// Materialize as the address set the public coverage API exposes.
    fn to_set(&self) -> HashSet<u32> {
        let mut set = self.spill.clone();
        for (w, &bits) in self.bits.iter().enumerate() {
            let mut bits = bits;
            while bits != 0 {
                let b = bits.trailing_zeros() as usize;
                set.insert(self.base + (w * 64 + b) as u32);
                bits &= bits - 1;
            }
        }
        set
    }
}

/// Executed-code footprint recorder: the byte ranges of the address
/// space that were fetched for execution. Unlike [`Coverage`] (which
/// marks every retired EIP and is rewound by [`Machine::restore`]), the
/// footprint is marked at *block-build* granularity — one range-OR when
/// a basic block is decoded into the cache (the build is the first
/// dispatch; `enable_footprint` flushes both tiers so nothing escapes),
/// one per instruction on the per-step engine — and deliberately
/// survives restores, so one footprint accumulates the
/// union over every replay of a checkpoint group. The campaign cache
/// keys a group's memoized results on the image bytes inside this
/// footprint: anything a run fetched can affect its outcome, anything
/// outside provably cannot (code bytes read as *data* are the documented
/// exception; `fisec cache verify` exists to audit it).
///
/// Marking is a conservative over-approximation: a block dispatch marks
/// the whole block even when execution faults mid-block, so the block
/// and per-step engines may record slightly different (both valid)
/// supersets of the bytes actually fetched.
#[derive(Debug, Clone)]
pub struct Footprint {
    base: u32,
    bits: Vec<u64>,
    /// Ranges outside the executable-region bitmap (wild execution in
    /// data/stack regions — rare).
    spill: Vec<(u32, u32)>,
    /// The last range marked. Dispatch loops re-mark the same block on
    /// every iteration; this one-entry memo makes the re-mark a compare
    /// instead of a bitmap walk.
    last: (u32, u32),
}

impl Footprint {
    /// Size the bitmap over the span of `mem`'s executable regions, like
    /// [`Coverage::new`].
    fn new(mem: &Memory) -> Footprint {
        let mut lo = u64::MAX;
        let mut hi = 0u64;
        for r in mem.regions().filter(|r| r.perms().exec) {
            lo = lo.min(r.start() as u64);
            hi = hi.max(r.end());
        }
        let span = hi.saturating_sub(lo) as usize;
        Footprint {
            base: if span == 0 { 0 } else { lo as u32 },
            bits: vec![0u64; span.div_ceil(64)],
            spill: Vec::new(),
            last: (u32::MAX, 0),
        }
    }

    /// Mark `[addr, addr + len)` as fetched.
    #[inline]
    pub fn mark_range(&mut self, addr: u32, len: u32) {
        if len == 0 || (addr, len) == self.last {
            return;
        }
        self.last = (addr, len);
        let off = addr.wrapping_sub(self.base) as usize;
        let end = off + len as usize;
        if addr >= self.base && end <= self.bits.len() * 64 {
            let (mut w, first_bit) = (off / 64, off % 64);
            let (last_w, last_bits) = ((end - 1) / 64, end - (end / 64) * 64);
            if w == last_w {
                let mask = (u64::MAX >> (64 - (end - off))) << first_bit;
                self.bits[w] |= mask;
                return;
            }
            self.bits[w] |= u64::MAX << first_bit;
            w += 1;
            while w < last_w {
                self.bits[w] = u64::MAX;
                w += 1;
            }
            if last_bits == 0 {
                self.bits[last_w] = u64::MAX;
            } else {
                self.bits[last_w] |= u64::MAX >> (64 - last_bits);
            }
            return;
        }
        // Outside the bitmap: coalesce with the previous spill range when
        // contiguous (tight loops outside text would otherwise grow it).
        if let Some((s, l)) = self.spill.last_mut() {
            let e = u64::from(*s) + u64::from(*l);
            let new_end = u64::from(addr) + u64::from(len);
            if u64::from(addr) <= e && new_end >= u64::from(*s) {
                let start = (*s).min(addr);
                let end = e.max(new_end);
                *s = start;
                *l = (end - u64::from(start)).min(u64::from(u32::MAX)) as u32;
                return;
            }
        }
        self.spill.push((addr, len));
    }

    /// The marked ranges as a sorted, coalesced `(start, len)` list.
    pub fn ranges(&self) -> Vec<(u32, u32)> {
        let mut out: Vec<(u32, u32)> = Vec::new();
        let mut i = 0usize;
        let total = self.bits.len() * 64;
        while i < total {
            let word = self.bits[i / 64];
            if word == 0 {
                i = (i / 64 + 1) * 64;
                continue;
            }
            if word >> (i % 64) & 1 == 0 {
                i += 1;
                continue;
            }
            let start = i;
            while i < total && self.bits[i / 64] >> (i % 64) & 1 == 1 {
                i += 1;
            }
            out.push((self.base + start as u32, (i - start) as u32));
        }
        out.extend(self.spill.iter().copied());
        out.sort_unstable();
        // Coalesce overlapping/adjacent ranges.
        let mut merged: Vec<(u32, u32)> = Vec::with_capacity(out.len());
        for (s, l) in out {
            if let Some((ps, pl)) = merged.last_mut() {
                let pe = u64::from(*ps) + u64::from(*pl);
                if u64::from(s) <= pe {
                    let e = pe.max(u64::from(s) + u64::from(l));
                    *pl = (e - u64::from(*ps)).min(u64::from(u32::MAX)) as u32;
                    continue;
                }
            }
            merged.push((s, l));
        }
        merged
    }

    /// Does the footprint contain the byte at `addr`?
    pub fn contains(&self, addr: u32) -> bool {
        let off = addr.wrapping_sub(self.base) as usize;
        if addr >= self.base
            && off < self.bits.len() * 64
            && self.bits[off / 64] >> (off % 64) & 1 == 1
        {
            return true;
        }
        self.spill
            .iter()
            .any(|(s, l)| addr >= *s && u64::from(addr) < u64::from(*s) + u64::from(*l))
    }
}

/// A CPU bound to an address space.
#[derive(Debug, Clone)]
pub struct Machine {
    /// Architectural registers.
    pub cpu: Cpu,
    /// Address space.
    pub mem: Memory,
    /// Instructions retired since construction.
    pub icount: u64,
    /// Armed breakpoint addresses, kept sorted for binary search.
    breakpoints: Vec<u32>,
    icache: Vec<ICacheEntry>,
    icache_gen: u64,
    /// Basic-block cache (see [`crate::block`]) and the executable
    /// generation its contents were last synchronized against.
    blocks: BlockCache,
    blocks_gen: u64,
    /// Dispatch through cached basic blocks (default). When false,
    /// [`Machine::run_until_event`] takes the reference per-step path.
    block_engine: bool,
    /// Tier-2 superblock cache (see [`crate::trace`]): hot blocks
    /// linked across taken branches, dispatched as one unit.
    traces: TraceCache,
    /// Promote hot blocks into tier-2 traces (default). Only meaningful
    /// while the block engine is on.
    trace_cache: bool,
    /// Rolling branch-history signature mixed into trace keys. Purely a
    /// cache-key ingredient — never observable in outcomes — so it is
    /// not snapshot state (restore just resets it).
    hist: u8,
    /// In-progress trace recording, when a promotion is underway.
    trace_rec: Option<TraceRec>,
    trace_buf: Vec<u32>,
    trace_cap: usize,
    trace_next: usize,
    coverage: Option<Coverage>,
    /// Executed-code footprint, marked at dispatch granularity (see
    /// [`Footprint`]). Not snapshot state: it survives restores so one
    /// footprint accumulates across every replay of a checkpoint group.
    footprint: Option<Box<Footprint>>,
    recorder: Option<FlightRecorder>,
    /// Propagation tracer (see [`crate::taint`]). Like the flight
    /// recorder it is per-run instrumentation: enabled by the injector
    /// after the flip is planted, dropped by [`Machine::restore`],
    /// excluded from snapshots. Boxed so the untraced machine carries
    /// only a pointer.
    taint: Option<Box<TaintTracer>>,
    profile: Option<Box<ExecProfile>>,
    decoder: fn(&[u8]) -> Inst,
    restores: u64,
}

/// Architectural state captured by [`Machine::snapshot`].
///
/// Holds everything needed to rewind a machine to an earlier point of
/// the same execution: registers, the full address space, the retired
/// instruction count, armed breakpoints, the EIP trace ring, and the
/// coverage set when enabled. The decoded caches (instructions and
/// basic blocks) are *not* part of the snapshot — they are pure
/// performance artifacts; [`Machine::restore`] uses the executable-write
/// journal to drop exactly the entries covering bytes that changed
/// since the snapshot was taken.
#[derive(Debug, Clone)]
pub struct MachineSnapshot {
    cpu: Cpu,
    mem: Memory,
    icount: u64,
    breakpoints: Vec<u32>,
    trace_buf: Vec<u32>,
    trace_cap: usize,
    trace_next: usize,
    coverage: Option<Coverage>,
}

const ICACHE_EMPTY: u32 = u32::MAX; // _start never sits at 0xFFFFFFFF

impl Machine {
    /// New machine over the given memory, with a zeroed CPU.
    pub fn new(mem: Memory) -> Machine {
        Machine {
            cpu: Cpu::new(),
            mem,
            icount: 0,
            breakpoints: Vec::new(),
            icache: Vec::new(),
            icache_gen: 0,
            blocks: BlockCache::default(),
            blocks_gen: 0,
            block_engine: true,
            traces: TraceCache::default(),
            trace_cache: true,
            hist: 0,
            trace_rec: None,
            trace_buf: Vec::new(),
            trace_cap: 0,
            trace_next: 0,
            coverage: None,
            footprint: None,
            recorder: None,
            taint: None,
            profile: None,
            decoder: decode,
            restores: 0,
        }
    }

    /// Capture the architectural state (registers, memory, icount,
    /// breakpoints, trace ring, coverage) for a later [`Machine::restore`].
    pub fn snapshot(&self) -> MachineSnapshot {
        MachineSnapshot {
            cpu: self.cpu.clone(),
            mem: self.mem.clone(),
            icount: self.icount,
            breakpoints: self.breakpoints.clone(),
            trace_buf: self.trace_buf.clone(),
            trace_cap: self.trace_cap,
            trace_next: self.trace_next,
            coverage: self.coverage.clone(),
        }
    }

    /// Rewind to a previously captured snapshot of *this* execution.
    ///
    /// The decoded caches survive the rewind wherever the executable-
    /// write journal can prove they are still exact. When the snapshot
    /// is an ancestor of the current state (the common case: checkpoint,
    /// poke one byte, run, restore, repeat), the journal names every
    /// byte written since it — only blocks covering those bytes are
    /// dropped, and the instruction cache is cleared only when at least
    /// one such byte exists. A snapshot from an unrelated lineage drops
    /// everything. The decoder function itself is not snapshot state and
    /// is left untouched.
    pub fn restore(&mut self, snap: &MachineSnapshot) {
        let snap_gen = snap.mem.exec_gen();
        if self.mem.exec_log_extends(&snap.mem) {
            // Invalidate from the oldest generation either cache could
            // still reflect: blocks were last synced at `blocks_gen`, and
            // the restore reverts every write after `snap_gen`.
            let from = self.blocks_gen.min(snap_gen);
            let dirty = self.mem.exec_writes_since(from);
            if !dirty.is_empty() {
                self.blocks.invalidate_writes(dirty);
                self.traces.invalidate_writes(dirty);
                self.icache.clear();
            }
        } else {
            // Restoring across lineages (or forward past unseen writes):
            // the byte diff cannot be attributed, drop everything.
            self.blocks.clear();
            self.traces.clear();
            self.icache.clear();
        }
        self.blocks_gen = snap_gen;
        // A recording in progress would stitch pre-rewind blocks onto
        // whatever executes next; abort it. The branch-history signature
        // restarts too, so every replay of a checkpoint group sees the
        // same trace-key sequence.
        self.trace_rec = None;
        self.hist = 0;
        self.cpu = snap.cpu.clone();
        self.mem = snap.mem.clone();
        self.icount = snap.icount;
        self.breakpoints = snap.breakpoints.clone();
        self.trace_buf = snap.trace_buf.clone();
        self.trace_cap = snap.trace_cap;
        self.trace_next = snap.trace_next;
        self.coverage = snap.coverage.clone();
        // The flight recorder is per-run instrumentation, not snapshot
        // state: rewinding drops any active recording. The injector
        // enables it after each restore, once the fault is planted.
        // The hot-spot profile and the executed-code footprint (also not
        // snapshot state) deliberately survive the rewind: one of each
        // accumulates across every replay of a checkpoint group.
        self.recorder = None;
        // The propagation tracer has the same per-run lifecycle.
        self.taint = None;
        self.restores += 1;
    }

    /// How many times [`Machine::restore`] has rewound this machine.
    /// Monotonic across restores (deliberately *not* snapshot state) —
    /// the telemetry layer reports it as replay work performed.
    pub fn restore_count(&self) -> u64 {
        self.restores
    }

    /// Record the set of distinct EIPs executed from now on. The
    /// campaign engine uses the golden run's coverage to skip injection
    /// targets at never-executed addresses. Internally a dense bitmap
    /// over the executable regions (with a spill set for EIPs outside
    /// them), so enable it after the image is mapped.
    pub fn enable_coverage(&mut self) {
        self.coverage = Some(Coverage::new(&self.mem));
    }

    /// Distinct executed EIPs since [`Machine::enable_coverage`], if
    /// recording is on (materialized from the internal bitmap).
    pub fn coverage(&self) -> Option<HashSet<u32>> {
        self.coverage.as_ref().map(Coverage::to_set)
    }

    /// Record the byte ranges fetched for execution from now on, at
    /// dispatch granularity (see [`Footprint`]). Unlike coverage this is
    /// not snapshot state: [`Machine::restore`] leaves it accumulating,
    /// so one footprint unions every replay of a checkpoint group.
    /// Enable it after the image is mapped (the bitmap spans the
    /// executable regions mapped at this point).
    pub fn enable_footprint(&mut self) {
        // Marking happens when a block is *built* (see `build_block`):
        // flush both tiers so everything dispatched from here on is
        // (re)built — and therefore marked — while recording.
        self.blocks.clear();
        self.traces.clear();
        self.trace_rec = None;
        self.footprint = Some(Box::new(Footprint::new(&self.mem)));
    }

    /// Whether the executed-code footprint is recording.
    pub fn footprint_enabled(&self) -> bool {
        self.footprint.is_some()
    }

    /// Stop footprint recording and take the accumulated [`Footprint`].
    /// `None` when it was never enabled.
    pub fn take_footprint(&mut self) -> Option<Footprint> {
        self.footprint.take().map(|b| *b)
    }

    /// Replace the instruction decoder — e.g. with a decoder for the
    /// paper's re-encoded instruction set, turning this machine into the
    /// "hypothetical processor" of §6.2. Clears the decoded-instruction
    /// and basic-block caches.
    pub fn set_decoder(&mut self, decoder: fn(&[u8]) -> Inst) {
        self.decoder = decoder;
        self.icache.clear();
        self.blocks.clear();
        self.traces.clear();
        self.trace_rec = None;
    }

    /// Choose the execution engine for [`Machine::run_until_event`]:
    /// `true` (the default) dispatches cached basic blocks, `false`
    /// forces the reference per-step interpreter. Outcomes are
    /// bit-identical either way; the flag exists as an escape hatch and
    /// for differential testing.
    pub fn set_block_engine(&mut self, enabled: bool) {
        if !enabled {
            self.blocks.clear();
            self.traces.clear();
            self.trace_rec = None;
        }
        self.block_engine = enabled;
    }

    /// Whether block dispatch is enabled (see
    /// [`Machine::set_block_engine`]).
    pub fn block_engine(&self) -> bool {
        self.block_engine
    }

    /// Cumulative basic-block cache counters.
    pub fn block_stats(&self) -> BlockStats {
        self.blocks.stats()
    }

    /// Choose whether hot blocks are promoted into tier-2 superblock
    /// traces (see [`crate::trace`]); on by default. Turning it off
    /// drops every cached trace. Outcomes are bit-identical either way —
    /// the flag exists as an escape hatch and for differential testing.
    pub fn set_trace_cache(&mut self, enabled: bool) {
        if !enabled {
            self.traces.clear();
            self.trace_rec = None;
        }
        self.trace_cache = enabled;
    }

    /// Whether tier-2 trace dispatch is enabled (see
    /// [`Machine::set_trace_cache`]).
    pub fn trace_cache(&self) -> bool {
        self.trace_cache
    }

    /// Cumulative trace-cache counters.
    pub fn trace_stats(&self) -> TraceStats {
        self.traces.stats()
    }

    /// Lower (or raise) the tier-2 promotion threshold — tests use `1`
    /// to form traces on the second dispatch of a block.
    pub fn set_trace_threshold(&mut self, threshold: u16) {
        self.traces.set_threshold(threshold);
    }

    /// Record the EIP of every retired instruction into a ring buffer of
    /// `capacity` entries (crash forensics). Zero disables tracing.
    pub fn enable_eip_trace(&mut self, capacity: usize) {
        self.trace_buf.clear();
        self.trace_cap = capacity;
        self.trace_next = 0;
    }

    /// The most recent EIPs, oldest first (at most the configured
    /// capacity).
    pub fn eip_trace(&self) -> Vec<u32> {
        if self.trace_buf.len() < self.trace_cap {
            self.trace_buf.clone()
        } else {
            let mut v = Vec::with_capacity(self.trace_cap);
            v.extend_from_slice(&self.trace_buf[self.trace_next..]);
            v.extend_from_slice(&self.trace_buf[..self.trace_next]);
            v
        }
    }

    /// Start the flight recorder: from now on every retired control
    /// transfer appends one [`Edge`] until `capacity` edges are held
    /// (further edges are counted but dropped — see
    /// [`crate::recorder`]). The current register file and instruction
    /// count are captured as the trace start. Recording survives
    /// [`Machine::snapshot`]-free execution only; [`Machine::restore`]
    /// drops it.
    pub fn enable_flight_recorder(&mut self, capacity: usize) {
        self.recorder = Some(FlightRecorder::new(capacity, self.cpu.clone(), self.icount));
    }

    /// Whether a flight recording is active.
    pub fn flight_recorder_enabled(&self) -> bool {
        self.recorder.is_some()
    }

    /// Stop the flight recorder and take the completed trace, stamping
    /// the current register file and instruction count as the stop
    /// state. `None` when no recording is active.
    pub fn take_flight_trace(&mut self) -> Option<FlightTrace> {
        self.recorder
            .take()
            .map(|r| r.into_trace(self.cpu.clone(), self.icount))
    }

    /// Start the propagation tracer (see [`crate::taint`]): shadow state
    /// is seeded when the instruction at `seed` executes (its output is
    /// the corruption) and propagated through every retired instruction
    /// while taint is live, up to `horizon` observed instructions.
    /// `seed: None` selects observe-all mode — every instruction runs
    /// the transfer function, nothing is ever seeded — which the
    /// clean-run property tests use. Pure observation: architectural
    /// state, outcomes, icounts, coverage and traces are bit-identical
    /// with it on or off. Like the flight recorder it is per-run:
    /// [`Machine::restore`] drops it.
    pub fn enable_taint(&mut self, seed: Option<u32>, horizon: u64) {
        self.taint = Some(Box::new(TaintTracer::new(seed, horizon)));
    }

    /// Whether a propagation tracer is active.
    pub fn taint_enabled(&self) -> bool {
        self.taint.is_some()
    }

    /// Current shadow width (tainted bytes + flags bit), when tracing.
    pub fn taint_width(&self) -> Option<u32> {
        self.taint.as_ref().map(|t| t.width())
    }

    /// Stop the propagation tracer and take its sealed
    /// [`PropagationLog`]. `None` when no tracer is active.
    pub fn take_propagation_log(&mut self) -> Option<PropagationLog> {
        self.taint.take().map(|t| t.into_log())
    }

    /// Does the propagation tracer need the instrumented path for the
    /// code range `[lo, hi)`? False whenever the shadow is empty and the
    /// seed lies outside the range — those blocks/traces cannot touch
    /// taint and stay on the fast path.
    #[inline]
    fn taint_wants(&self, lo: u32, hi: u64) -> bool {
        match &self.taint {
            Some(t) => t.wants_range(lo, hi),
            None => false,
        }
    }

    /// Run the taint transfer function over one about-to-execute
    /// instruction (no-op when not tracing). `cpu` must be the
    /// pre-execution register file and `icount` the instruction's
    /// retirement count.
    #[inline]
    fn taint_hook(&mut self, inst: &Inst, addr: u32, icount: u64) {
        if let Some(t) = &mut self.taint {
            t.observe(&self.cpu, inst, addr, icount);
        }
    }

    /// Start the hot-spot profiler (see [`crate::profiler`]): from now
    /// on every block dispatch, slow-path execution and single-stepped
    /// instruction is tallied, and block-cache counters are measured as
    /// a delta from this point. Pure observation — architectural state,
    /// outcomes, icounts and traces are bit-identical with it on or off.
    /// Unlike the flight recorder it survives [`Machine::restore`].
    pub fn enable_profiler(&mut self) {
        self.profile = Some(Box::new(ExecProfile::begin(
            self.blocks.stats(),
            self.traces.stats(),
        )));
    }

    /// Whether the hot-spot profiler is collecting.
    pub fn profiler_enabled(&self) -> bool {
        self.profile.is_some()
    }

    /// Stop the profiler and take the collected [`ExecProfile`], with
    /// its cache counters sealed against the current [`BlockStats`].
    /// `None` when profiling was never enabled.
    pub fn take_exec_profile(&mut self) -> Option<ExecProfile> {
        let stats = self.blocks.stats();
        let tstats = self.traces.stats();
        self.profile.take().map(|mut p| {
            p.seal(stats, tstats);
            *p
        })
    }

    /// Append a control-transfer edge when recording (no-op otherwise).
    #[inline]
    fn record_edge(&mut self, kind: EdgeKind, from: u32, to: u32, icount: u64) {
        if let Some(rec) = &mut self.recorder {
            rec.push(Edge {
                from,
                to,
                icount,
                kind,
            });
        }
    }

    /// Record a retired instruction's control flow: `taken` carries the
    /// jump target when EIP moved, `None` for fall-through (which emits
    /// an edge only for not-taken conditional branches).
    #[inline]
    fn record_flow(&mut self, inst: &Inst, from: u32, taken: Option<u32>, icount: u64) {
        if let Some(kind) = edge_kind(inst, taken.is_some()) {
            let to = taken.unwrap_or_else(|| from.wrapping_add(inst.len as u32));
            self.record_edge(kind, from, to, icount);
        }
    }

    /// Arm a breakpoint. Hitting it pauses execution *before* the
    /// instruction at `addr` runs.
    pub fn add_breakpoint(&mut self, addr: u32) {
        if let Err(i) = self.breakpoints.binary_search(&addr) {
            self.breakpoints.insert(i, addr);
        }
    }

    /// Disarm a breakpoint. Returns true if it was armed.
    pub fn remove_breakpoint(&mut self, addr: u32) -> bool {
        let before = self.breakpoints.len();
        self.breakpoints.retain(|a| *a != addr);
        self.breakpoints.len() != before
    }

    /// Is a breakpoint armed at `eip`? Cheap min/max range pre-check,
    /// then binary search over the sorted list.
    #[inline]
    fn at_breakpoint(&self, eip: u32) -> bool {
        match (self.breakpoints.first(), self.breakpoints.last()) {
            (Some(&lo), Some(&hi)) if lo <= eip && eip <= hi => {
                self.breakpoints.binary_search(&eip).is_ok()
            }
            _ => false,
        }
    }

    /// Is a breakpoint armed strictly inside `(entry, end)`? A hit at
    /// `entry` itself is handled by the dispatch loop's pre-check.
    fn breakpoint_inside(&self, entry: u32, end: u64) -> bool {
        let i = self.breakpoints.partition_point(|&b| b <= entry);
        self.breakpoints.get(i).is_some_and(|&b| (b as u64) < end)
    }

    /// Is a breakpoint armed anywhere in `[lo, hi)`? Unlike
    /// [`Machine::breakpoint_inside`] this includes `lo` itself: only
    /// the trace's first block had its entry cleared by the dispatch
    /// loop's pre-check, and a linked successor may start *below* that
    /// entry, so the whole footprint is screened inclusively.
    fn breakpoint_in_range(&self, lo: u32, hi: u64) -> bool {
        let i = self.breakpoints.partition_point(|&b| b < lo);
        self.breakpoints.get(i).is_some_and(|&b| (b as u64) < hi)
    }

    /// Run until a breakpoint, syscall, fault, or `max_steps` instructions.
    ///
    /// Dispatches cached basic blocks (see [`crate::block`]) unless the
    /// per-step engine was selected via [`Machine::set_block_engine`];
    /// both produce bit-identical outcomes, icounts, coverage and traces.
    pub fn run_until_event(&mut self, max_steps: u64) -> RunOutcome {
        if self.block_engine {
            self.run_blocks(max_steps)
        } else {
            self.run_stepwise(max_steps)
        }
    }

    /// Reference engine: one [`Machine::step`] per loop iteration.
    fn run_stepwise(&mut self, max_steps: u64) -> RunOutcome {
        let mut steps = 0u64;
        loop {
            if self.at_breakpoint(self.cpu.eip) {
                return RunOutcome::Breakpoint(self.cpu.eip);
            }
            if steps >= max_steps {
                return RunOutcome::Budget;
            }
            steps += 1;
            match self.step() {
                StepEvent::Executed => {}
                StepEvent::Syscall(n) => return RunOutcome::Syscall(n),
                StepEvent::Fault(f) => return RunOutcome::Fault(f),
            }
        }
    }

    /// Block-dispatch engine: look up (or build) the basic block at EIP
    /// and retire it whole, with one budget/breakpoint check and one
    /// icount add per block. Falls back to a precise single step whenever
    /// whole-block retirement could be observed — a breakpoint inside the
    /// block, the budget expiring mid-block, or an instruction that reads
    /// the live icount (`rdtsc`) — so every outcome matches
    /// [`Machine::run_stepwise`] exactly.
    ///
    /// On top of that sits tier 2 (see [`crate::trace`]): re-dispatched
    /// blocks heat up and get recorded, together with their observed
    /// successors across taken branches, into superblock traces replayed
    /// as one dispatch. A trace is taken only when its full retirement
    /// fits the remaining budget and no breakpoint lies anywhere in its
    /// footprint, so every precise-stop obligation is met by declining
    /// the trace, not by stopping inside one.
    fn run_blocks(&mut self, max_steps: u64) -> RunOutcome {
        self.sync_blocks();
        let mut steps = 0u64;
        loop {
            let eip = self.cpu.eip;
            if self.at_breakpoint(eip) {
                self.finish_trace_rec();
                return RunOutcome::Breakpoint(eip);
            }
            if steps >= max_steps {
                self.finish_trace_rec();
                return RunOutcome::Budget;
            }
            // Tier-2 dispatch. Heat only accumulates on a genuine miss:
            // a resident trace declined for budget/breakpoint reasons
            // must not re-record, and record mode itself runs tier 1.
            let mut trace_missed = self.trace_cache && self.trace_rec.is_none();
            if trace_missed {
                if let Some(t) = self.traces.get(eip, self.hist) {
                    trace_missed = false;
                    // Like breakpoints, live taint declines the trace
                    // rather than observing inside one: a taken trace is
                    // thereby provably taint-free (shadow empty, seed
                    // outside its footprint), so tier-2 replay needs no
                    // hooks at all.
                    if t.total_insts <= max_steps - steps
                        && !self.breakpoint_in_range(t.lo, t.hi)
                        && !self.taint_wants(t.lo, t.hi)
                    {
                        if let Some(out) = self.exec_trace(&t, &mut steps) {
                            return out;
                        }
                        continue;
                    }
                }
            }
            let block = match self.blocks.get(eip) {
                Some(b) => b,
                None => match self.build_block(eip) {
                    Ok(b) => b,
                    // Entry fetch fault: same as step()'s fetch_decode
                    // failure (no icount, no coverage mark).
                    Err(f) => {
                        self.finish_trace_rec();
                        if self.recorder.is_some() {
                            self.record_edge(EdgeKind::Fault, eip, 0, self.icount);
                        }
                        return RunOutcome::Fault(f);
                    }
                },
            };
            if block.reads_icount
                || (block.insts.len() as u64) > max_steps - steps
                || self.breakpoint_inside(block.entry, block.end)
            {
                // Single-step fallback breaks the block-at-a-time shape
                // a trace replays; end any recording at this seam.
                self.finish_trace_rec();
                steps += 1;
                match self.step() {
                    StepEvent::Executed => continue,
                    StepEvent::Syscall(n) => return RunOutcome::Syscall(n),
                    StepEvent::Fault(f) => return RunOutcome::Fault(f),
                }
            }
            if trace_missed && self.traces.heat_up(eip, self.hist) {
                // Promoted: record this dispatch and its successors.
                self.trace_rec = Some(TraceRec {
                    entry: eip,
                    hist: self.hist,
                    blocks: Vec::new(),
                    total: 0,
                });
            }
            let fast = !block.writes
                && self.coverage.is_none()
                && self.trace_cap == 0
                && self.recorder.is_none()
                && self.profile.is_none()
                && !self.taint_wants(block.entry, block.end);
            let mut resident = false;
            loop {
                let gen = self.mem.exec_gen();
                let (executed, event) = if fast {
                    self.exec_block_fast(&block)
                } else {
                    self.exec_block(&block)
                };
                steps += executed;
                if let Some(p) = &mut self.profile {
                    p.note_block(block.entry, executed);
                }
                match event {
                    StepEvent::Executed => {
                        // Resident-loop fast path: a block whose
                        // terminator jumps back to its own entry (tight
                        // spin/poll loops — the dominant shape of
                        // budget-bounded hang runs) re-executes without
                        // paying the dispatch costs again. Sound because
                        // breakpoints cannot change while we run (entry
                        // and interior were already cleared above) and a
                        // self-modification would have changed the
                        // generation.
                        if self.cpu.eip == block.entry
                            && steps + block.insts.len() as u64 <= max_steps
                            && self.mem.exec_gen() == gen
                        {
                            resident = true;
                            self.blocks.note_resident_hit();
                            continue;
                        }
                        let clean =
                            executed == block.insts.len() as u64 && self.mem.exec_gen() == gen;
                        self.trace_append(&block, clean, resident);
                        self.hist = hist_step(self.hist, self.cpu.eip);
                        break;
                    }
                    StepEvent::Syscall(n) => {
                        // A syscall terminator retires the whole block
                        // cleanly, so the recording stays alive: traces
                        // span syscalls, resuming at the return address
                        // on the next run. (Staleness across the pause
                        // is covered by sync_blocks aborting recordings
                        // on any generation change.)
                        let clean = executed == block.insts.len() as u64;
                        self.trace_append(&block, clean, resident);
                        self.hist = hist_step(self.hist, self.cpu.eip);
                        return RunOutcome::Syscall(n);
                    }
                    StepEvent::Fault(f) => {
                        self.finish_trace_rec();
                        return RunOutcome::Fault(f);
                    }
                }
            }
        }
    }

    /// Replay a tier-2 trace: execute its linked blocks back-to-back,
    /// guarding each edge by comparing the live EIP against the next
    /// block's recorded entry. Returns the terminal outcome, or `None`
    /// when the dispatch loop should continue (full completion, a
    /// mispredicted guard, or a self-modification boundary — in each
    /// case everything retired so far is exactly what tier 1 would have
    /// retired).
    fn exec_trace(&mut self, t: &SuperTrace, steps: &mut u64) -> Option<RunOutcome> {
        let fast = self.coverage.is_none()
            && self.trace_cap == 0
            && self.recorder.is_none()
            && self.profile.is_none();
        let mut retired = 0u64;
        for (i, block) in t.blocks.iter().enumerate() {
            if i > 0 && self.cpu.eip != block.entry {
                // Guard mispredicted: side-exit to tier 1. The previous
                // block already stepped the history with the divergent
                // target, so re-dispatch sees a coherent key.
                self.traces.note_side_exit();
                return None;
            }
            let gen = self.mem.exec_gen();
            let (executed, event) = if fast && !block.writes {
                self.exec_block_fast(block)
            } else {
                self.exec_block(block)
            };
            *steps += executed;
            retired += executed;
            if let Some(p) = &mut self.profile {
                p.note_block(block.entry, executed);
            }
            match event {
                StepEvent::Executed => {
                    self.hist = hist_step(self.hist, self.cpu.eip);
                    if executed != block.insts.len() as u64 || self.mem.exec_gen() != gen {
                        // The block self-modified: exec_block already
                        // stopped at the write boundary and resynced the
                        // caches (dropping stale traces); side-exit.
                        self.traces.note_side_exit();
                        return None;
                    }
                }
                StepEvent::Syscall(n) => {
                    self.hist = hist_step(self.hist, self.cpu.eip);
                    if let Some(p) = &mut self.profile {
                        p.note_trace(t.entry, retired);
                    }
                    return Some(RunOutcome::Syscall(n));
                }
                StepEvent::Fault(f) => return Some(RunOutcome::Fault(f)),
            }
        }
        if let Some(p) = &mut self.profile {
            p.note_trace(t.entry, retired);
        }
        None
    }

    /// Append a cleanly completed block to the in-progress trace
    /// recording (if any), finalizing at the length bound. Non-clean
    /// completions (a mid-block self-modification stop) and
    /// resident-looped blocks end the recording instead: neither shape
    /// replays under a trace's one-pass-per-block guards.
    fn trace_append(&mut self, block: &Arc<Block>, clean: bool, resident: bool) {
        let Some(rec) = &mut self.trace_rec else {
            return;
        };
        if !clean || resident {
            self.finish_trace_rec();
            return;
        }
        rec.total += block.insts.len() as u64;
        rec.blocks.push(Arc::clone(block));
        if rec.blocks.len() >= MAX_TRACE_BLOCKS {
            self.finish_trace_rec();
        }
    }

    /// End any in-progress trace recording: recordings that linked at
    /// least two blocks are inserted, shorter ones are dropped (tier 1
    /// already dispatches single blocks, and its resident-loop path
    /// covers the self-looping ones).
    fn finish_trace_rec(&mut self) {
        if let Some(rec) = self.trace_rec.take() {
            if rec.blocks.len() >= 2 {
                self.traces.insert(rec);
            }
        }
    }

    /// Bring the block cache in line with the current executable bytes:
    /// drop exactly the blocks covering bytes written since the last
    /// sync, as named by the memory journal.
    fn sync_blocks(&mut self) {
        let gen = self.mem.exec_gen();
        if gen == self.blocks_gen {
            return;
        }
        if gen > self.blocks_gen {
            let dirty = self.mem.exec_writes_since(self.blocks_gen);
            self.blocks.invalidate_writes(dirty);
            self.traces.invalidate_writes(dirty);
        } else {
            // Generation moved backwards outside restore(): the diff
            // cannot be attributed, drop everything.
            self.blocks.clear();
            self.traces.clear();
        }
        // Any recording in progress may hold a just-staled block; the
        // write seam ends it.
        self.trace_rec = None;
        self.blocks_gen = gen;
    }

    /// Decode the basic block entered at `eip` and cache it.
    ///
    /// # Errors
    /// [`Fault::FetchFault`] when `eip` itself is unfetchable. A fetch
    /// fault *past* the first instruction instead ends the block early:
    /// execution re-dispatches at the unfetchable address and the fault
    /// surfaces there, exactly as in per-step order.
    fn build_block(&mut self, eip: u32) -> Result<Arc<Block>, Fault> {
        let mut insts = Vec::new();
        let mut reads_icount = false;
        let mut addr = eip;
        let mut end = eip as u64;
        loop {
            let inst = match self.fetch_decode(addr) {
                Ok(i) => i,
                Err(f) => {
                    if insts.is_empty() {
                        return Err(f);
                    }
                    break;
                }
            };
            let next = addr.wrapping_add(inst.len as u32);
            insts.push(LInst::new(addr, next, inst));
            end = addr as u64 + u64::from(inst.len.max(1));
            reads_icount |= matches!(inst.op, Op::Rdtsc);
            // Control transfers, software interrupts and invalid
            // instructions all end a block: they are the only ops whose
            // exec can leave EIP somewhere other than the next address.
            if inst.is_control_transfer()
                || matches!(inst.op, Op::Int(_) | Op::Int3 | Op::Into | Op::Invalid(_))
                || insts.len() >= MAX_BLOCK_INSTS
            {
                break;
            }
            if next <= addr {
                break; // zero-length decode or address-space wrap
            }
            addr = next;
        }
        let writes = insts.iter().any(|li| li.uop.may_write());
        let block = Arc::new(Block {
            entry: eip,
            end,
            insts,
            reads_icount,
            writes,
        });
        if let Some(fp) = &mut self.footprint {
            // One range-OR per block *build* covers every later dispatch
            // of it: `enable_footprint` flushed both tiers, so anything
            // dispatched while recording was built while recording
            // (invalidation and LRU eviction only cause idempotent
            // re-marks). The whole block is marked even when execution
            // stops inside it — a valid superset.
            fp.mark_range(block.entry, (block.end - u64::from(block.entry)) as u32);
        }
        self.blocks.insert(Arc::clone(&block));
        Ok(block)
    }

    /// Execute every instruction of `block`, batching the bookkeeping:
    /// the icount is added once on exit, and the coverage/trace marks are
    /// skipped entirely when neither is enabled. Returns the number of
    /// instructions retired and the terminating event
    /// ([`StepEvent::Executed`] when the block ran to completion or
    /// stopped at a self-modification boundary).
    fn exec_block(&mut self, block: &Block) -> (u64, StepEvent) {
        let gen0 = self.mem.exec_gen();
        let marking = self.coverage.is_some() || self.trace_cap > 0;
        let recording = self.recorder.is_some();
        let profiling = self.profile.is_some();
        // Hook only when the tracer can observe something in this block:
        // taint is born only at the seed address and propagates only
        // while the shadow is live, so a dead-shadow block without the
        // seed skips the per-instruction hook entirely (the common case
        // for a flipped branch that taints nothing). Liveness cannot
        // appear mid-block outside the seed's range, so the predicate is
        // loop-invariant.
        let tainting = self
            .taint
            .as_ref()
            .is_some_and(|t| t.wants_range(block.entry, block.end));
        let mut executed = 0u64;
        for li in &block.insts {
            if marking {
                self.mark_retired(li.addr);
            }
            if profiling && matches!(li.uop, UOp::Slow) {
                if let Some(p) = &mut self.profile {
                    p.note_slow(li.addr, &li.inst);
                }
            }
            executed += 1;
            if tainting {
                // Before the handler runs: the transfer function needs
                // the pre-execution register file to resolve effective
                // addresses and string counts. The icount convention
                // matches the recorder's (count *of* this instruction).
                self.taint_hook(&li.inst, li.addr, self.icount + executed);
            }
            match (li.handler)(self, li) {
                Ok(Flow::Next) => {
                    self.cpu.eip = li.next;
                    if recording {
                        // Only a not-taken conditional branch emits an
                        // edge here; classification is by decoded
                        // instruction, identical to the per-step engine.
                        self.record_flow(&li.inst, li.addr, None, self.icount + executed);
                    }
                }
                Ok(Flow::Jump(t)) => {
                    self.cpu.eip = t;
                    if recording {
                        self.record_flow(&li.inst, li.addr, Some(t), self.icount + executed);
                    }
                }
                Ok(Flow::Syscall(v)) => {
                    self.cpu.eip = li.next;
                    self.icount += executed;
                    if recording {
                        let nr = self.cpu.regs[0];
                        self.record_edge(EdgeKind::Syscall, li.addr, nr, self.icount);
                    }
                    return (executed, StepEvent::Syscall(v));
                }
                Err(f) => {
                    // EIP stays at the faulting instruction, as in step().
                    self.cpu.eip = li.addr;
                    self.icount += executed;
                    if recording {
                        self.record_edge(EdgeKind::Fault, li.addr, 0, self.icount);
                    }
                    return (executed, StepEvent::Fault(f));
                }
            }
            if li.uop.may_write() && self.mem.exec_gen() != gen0 {
                // The instruction wrote executable bytes; stop at this
                // boundary so the rest of the block is re-decoded from
                // the new bytes, exactly as the per-step engine would.
                self.icount += executed;
                self.sync_blocks();
                return (executed, StepEvent::Executed);
            }
        }
        self.icount += executed;
        (executed, StepEvent::Executed)
    }

    /// Instrumentation-free block executor. The dispatch loop selects it
    /// when no coverage bitmap, EIP trace ring, flight recorder or
    /// profiler is attached *and* the block contains no memory writes
    /// (so no self-modification re-check is needed either). With every
    /// observation channel absent, the only architecturally visible EIP
    /// values are the ones a fault, syscall, taken jump or block exit
    /// leaves behind — so the per-instruction EIP stores on
    /// straight-line flow are skipped entirely.
    fn exec_block_fast(&mut self, block: &Block) -> (u64, StepEvent) {
        let n = block.insts.len() as u64;
        let mut executed = 0u64;
        for li in &block.insts {
            executed += 1;
            match (li.handler)(self, li) {
                Ok(Flow::Next) => {
                    // Only the block's last instruction can fall through
                    // off the end (interior instructions are never
                    // control transfers), and only there does the
                    // fall-through EIP become observable.
                    if executed == n {
                        self.cpu.eip = li.next;
                    }
                }
                Ok(Flow::Jump(t)) => self.cpu.eip = t,
                Ok(Flow::Syscall(v)) => {
                    self.cpu.eip = li.next;
                    self.icount += executed;
                    return (executed, StepEvent::Syscall(v));
                }
                Err(f) => {
                    // EIP stays at the faulting instruction, as in step().
                    self.cpu.eip = li.addr;
                    self.icount += executed;
                    return (executed, StepEvent::Fault(f));
                }
            }
        }
        self.icount += executed;
        (executed, StepEvent::Executed)
    }

    /// Resolve a lowered effective address.
    #[inline]
    fn ea_lowered(&self, ea: crate::block::Ea) -> u32 {
        let base = if ea.base < 8 {
            self.cpu.regs[ea.base as usize]
        } else {
            0
        };
        base.wrapping_add(ea.disp)
    }

    /// Per-retired-instruction coverage and trace bookkeeping.
    #[inline]
    fn mark_retired(&mut self, eip: u32) {
        if let Some(cov) = &mut self.coverage {
            cov.insert(eip);
        }
        if self.trace_cap > 0 {
            if self.trace_buf.len() < self.trace_cap {
                self.trace_buf.push(eip);
            } else {
                self.trace_buf[self.trace_next] = eip;
                self.trace_next = (self.trace_next + 1) % self.trace_cap;
            }
        }
    }

    /// Fetch, decode and execute one instruction.
    pub fn step(&mut self) -> StepEvent {
        let eip = self.cpu.eip;
        let inst = match self.fetch_decode(eip) {
            Ok(i) => i,
            Err(f) => {
                // Fetch fault: nothing retired, matching the block
                // engine's entry-fault path.
                if self.recorder.is_some() {
                    self.record_edge(EdgeKind::Fault, eip, 0, self.icount);
                }
                return StepEvent::Fault(f);
            }
        };
        self.icount += 1;
        self.mark_retired(eip);
        if let Some(fp) = &mut self.footprint {
            fp.mark_range(eip, u32::from(inst.len.max(1)));
        }
        if let Some(p) = &mut self.profile {
            p.stepwise_retired += 1;
        }
        let recording = self.recorder.is_some();
        let next = eip.wrapping_add(inst.len as u32);
        if self.taint.is_some() {
            self.taint_hook(&inst, eip, self.icount);
        }
        match self.exec(&inst, eip, next) {
            Ok(Flow::Next) => {
                self.cpu.eip = next;
                if recording {
                    self.record_flow(&inst, eip, None, self.icount);
                }
                StepEvent::Executed
            }
            Ok(Flow::Jump(t)) => {
                self.cpu.eip = t;
                if recording {
                    self.record_flow(&inst, eip, Some(t), self.icount);
                }
                StepEvent::Executed
            }
            Ok(Flow::Syscall(v)) => {
                self.cpu.eip = next;
                if recording {
                    let nr = self.cpu.regs[0];
                    self.record_edge(EdgeKind::Syscall, eip, nr, self.icount);
                }
                StepEvent::Syscall(v)
            }
            Err(f) => {
                if recording {
                    self.record_edge(EdgeKind::Fault, eip, 0, self.icount);
                }
                StepEvent::Fault(f)
            }
        }
    }

    /// Fetch+decode with a direct-mapped cache keyed on EIP, invalidated
    /// whenever executable bytes change (the injector's pokes).
    fn fetch_decode(&mut self, eip: u32) -> Result<Inst, Fault> {
        let gen = self.mem.exec_gen();
        if self.icache_gen != gen || self.icache.is_empty() {
            self.icache.clear();
            self.icache.resize(
                ICACHE_SIZE,
                ICacheEntry {
                    addr: ICACHE_EMPTY,
                    inst: Inst::new(crate::inst::Op::Nop),
                },
            );
            self.icache_gen = gen;
        }
        let slot = (eip as usize ^ (eip as usize >> 12)) & (ICACHE_SIZE - 1);
        let e = &self.icache[slot];
        if e.addr == eip {
            return Ok(e.inst);
        }
        let (window, n) = self.mem.fetch_window(eip)?;
        let inst = (self.decoder)(&window[..n]);
        self.icache[slot] = ICacheEntry { addr: eip, inst };
        Ok(inst)
    }

    /// Effective address of a memory operand.
    pub fn ea(&self, m: &MemOperand) -> u32 {
        let mut a = m.disp as u32;
        if let Some(b) = m.base {
            a = a.wrapping_add(self.cpu.regs[b as usize]);
        }
        if let Some((i, s)) = m.index {
            a = a.wrapping_add(self.cpu.regs[i as usize].wrapping_mul(s as u32));
        }
        a
    }

    fn read_val(&self, op: &Operand, size: OpSize) -> Result<u32, Fault> {
        Ok(match op {
            Operand::Reg(r) => self.cpu.regs[*r as usize],
            Operand::Reg16(r) => self.cpu.regs[*r as usize] & 0xFFFF,
            Operand::Reg8(r) => self.cpu.get8(*r) as u32,
            Operand::Imm(v) => (*v as u32) & size.mask(),
            Operand::Mem(m) => {
                let a = self.ea(m);
                match size {
                    OpSize::Byte => self.mem.read8(a)? as u32,
                    OpSize::Word => self.mem.read16(a)? as u32,
                    OpSize::Dword => self.mem.read32(a)?,
                }
            }
            Operand::Rel(_) => 0,
        })
    }

    fn write_val(&mut self, op: &Operand, size: OpSize, v: u32) -> Result<(), Fault> {
        match op {
            Operand::Reg(r) => self.cpu.regs[*r as usize] = v,
            Operand::Reg16(r) => {
                let n = *r as usize;
                self.cpu.regs[n] = (self.cpu.regs[n] & !0xFFFF) | (v & 0xFFFF);
            }
            Operand::Reg8(r) => self.cpu.set8(*r, v as u8),
            Operand::Mem(m) => {
                let a = self.ea(m);
                match size {
                    OpSize::Byte => self.mem.write8(a, v as u8)?,
                    OpSize::Word => self.mem.write16(a, v as u16)?,
                    OpSize::Dword => self.mem.write32(a, v)?,
                }
            }
            _ => {}
        }
        Ok(())
    }

    fn push(&mut self, v: u32, size: OpSize) -> Result<(), Fault> {
        let esp = self.cpu.regs[4].wrapping_sub(size.bytes().max(2));
        match size {
            OpSize::Word => self.mem.write16(esp, v as u16)?,
            _ => self.mem.write32(esp, v)?,
        }
        self.cpu.regs[4] = esp;
        Ok(())
    }

    fn pop(&mut self, size: OpSize) -> Result<u32, Fault> {
        let esp = self.cpu.regs[4];
        let v = match size {
            OpSize::Word => self.mem.read16(esp)? as u32,
            _ => self.mem.read32(esp)?,
        };
        self.cpu.regs[4] = esp.wrapping_add(size.bytes().max(2));
        Ok(v)
    }

    #[allow(clippy::too_many_lines)]
    fn exec(&mut self, i: &Inst, eip: u32, next: u32) -> Result<Flow, Fault> {
        let size = i.size;
        let f = &mut self.cpu.eflags;
        match i.op {
            Op::Invalid(kind) => {
                return Err(match kind {
                    InvalidKind::Undefined => Fault::InvalidOpcode(eip),
                    InvalidKind::Privileged | InvalidKind::TooLong => Fault::GeneralProtection(eip),
                    InvalidKind::Truncated => Fault::FetchFault(eip),
                })
            }
            Op::Nop | Op::Fpu | Op::Fwait => {}
            Op::Mov => {
                let v = self.read_val(&i.src.unwrap(), size)?;
                self.write_val(&i.dst.unwrap(), size, v)?;
            }
            Op::Movzx => {
                let v = self.read_val(&i.src.unwrap(), i.size2)?;
                self.write_val(&i.dst.unwrap(), size, v & i.size2.mask())?;
            }
            Op::Movsx => {
                let v = self.read_val(&i.src.unwrap(), i.size2)?;
                let s = match i.size2 {
                    OpSize::Byte => v as u8 as i8 as i32 as u32,
                    OpSize::Word => v as u16 as i16 as i32 as u32,
                    OpSize::Dword => v,
                };
                self.write_val(&i.dst.unwrap(), size, s & size.mask())?;
            }
            Op::Lea => {
                let Operand::Mem(m) = i.src.unwrap() else {
                    return Err(Fault::InvalidOpcode(eip));
                };
                let a = self.ea(&m);
                self.write_val(&i.dst.unwrap(), OpSize::Dword, a)?;
            }
            Op::Xchg => {
                let a = self.read_val(&i.dst.unwrap(), size)?;
                let b = self.read_val(&i.src.unwrap(), size)?;
                self.write_val(&i.dst.unwrap(), size, b)?;
                self.write_val(&i.src.unwrap(), size, a)?;
            }
            Op::Add
            | Op::Or
            | Op::Adc
            | Op::Sbb
            | Op::And
            | Op::Sub
            | Op::Xor
            | Op::Cmp
            | Op::Test => {
                let a = self.read_val(&i.dst.unwrap(), size)?;
                let b = self.read_val(&i.src.unwrap(), size)?;
                let f = &mut self.cpu.eflags;
                let carry = *f & CF != 0;
                let (r, write) = match i.op {
                    Op::Add => (flags::add(f, a, b, size, true), true),
                    Op::Adc => (flags::adc(f, a, b, carry, size), true),
                    Op::Sub => (flags::sub(f, a, b, size, true), true),
                    Op::Sbb => (flags::sbb(f, a, b, carry, size), true),
                    Op::Cmp => (flags::sub(f, a, b, size, true), false),
                    Op::And => (flags::logic(f, a & b, size), true),
                    Op::Test => (flags::logic(f, a & b, size), false),
                    Op::Or => (flags::logic(f, a | b, size), true),
                    Op::Xor => (flags::logic(f, a ^ b, size), true),
                    _ => unreachable!(),
                };
                if write {
                    self.write_val(&i.dst.unwrap(), size, r)?;
                }
            }
            Op::Inc | Op::Dec => {
                let a = self.read_val(&i.dst.unwrap(), size)?;
                let f = &mut self.cpu.eflags;
                let r = if i.op == Op::Inc {
                    flags::add(f, a, 1, size, false)
                } else {
                    flags::sub(f, a, 1, size, false)
                };
                self.write_val(&i.dst.unwrap(), size, r)?;
            }
            Op::Neg => {
                let a = self.read_val(&i.dst.unwrap(), size)?;
                let f = &mut self.cpu.eflags;
                let r = flags::sub(f, 0, a, size, true);
                self.write_val(&i.dst.unwrap(), size, r)?;
            }
            Op::Not => {
                let a = self.read_val(&i.dst.unwrap(), size)?;
                self.write_val(&i.dst.unwrap(), size, !a & size.mask())?;
            }
            Op::Mul => {
                let src = self.read_val(&i.dst.unwrap(), size)?;
                self.mul_impl(src, size, false);
            }
            Op::Imul1 => {
                let src = self.read_val(&i.dst.unwrap(), size)?;
                self.mul_impl(src, size, true);
            }
            Op::Imul2 | Op::Imul3 => {
                let lhs = if i.op == Op::Imul2 {
                    self.read_val(&i.dst.unwrap(), size)?
                } else {
                    self.read_val(&i.src.unwrap(), size)?
                };
                let rhs = if i.op == Op::Imul2 {
                    self.read_val(&i.src.unwrap(), size)?
                } else {
                    self.read_val(&i.src2.unwrap(), size)?
                };
                let full = (lhs as i32 as i64) * (rhs as i32 as i64);
                let r = full as u32 & size.mask();
                let f = &mut self.cpu.eflags;
                flags::zsp(f, r, size);
                let overflow = full != (r as i32 as i64);
                flags::set_bits(f, CF | OF, if overflow { CF | OF } else { 0 });
                self.write_val(&i.dst.unwrap(), size, r)?;
            }
            Op::Div => {
                let d = self.read_val(&i.dst.unwrap(), size)?;
                self.div_impl(d, size, false, eip)?;
            }
            Op::Idiv => {
                let d = self.read_val(&i.dst.unwrap(), size)?;
                self.div_impl(d, size, true, eip)?;
            }
            Op::Shl | Op::Shr | Op::Sar | Op::Rol | Op::Ror | Op::Rcl | Op::Rcr => {
                let a = self.read_val(&i.dst.unwrap(), size)?;
                let cnt = self.read_val(&i.src.unwrap(), OpSize::Byte)? & 31;
                let r = self.shift_impl(i.op, a, cnt, size);
                self.write_val(&i.dst.unwrap(), size, r)?;
            }
            Op::Shld | Op::Shrd => {
                let a = self.read_val(&i.dst.unwrap(), size)?;
                let b = self.read_val(&i.src.unwrap(), size)?;
                let cnt = self.read_val(&i.src2.unwrap(), OpSize::Byte)? & 31;
                if cnt != 0 {
                    let bits = size.bytes() * 8;
                    let r = if cnt >= bits {
                        a // undefined on hardware; keep deterministic
                    } else if i.op == Op::Shld {
                        ((a << cnt) | (b >> (bits - cnt))) & size.mask()
                    } else {
                        ((a >> cnt) | (b << (bits - cnt))) & size.mask()
                    };
                    let f = &mut self.cpu.eflags;
                    flags::zsp(f, r, size);
                    self.write_val(&i.dst.unwrap(), size, r)?;
                }
            }
            Op::Bt | Op::Bts | Op::Btr | Op::Btc => {
                let idx = self.read_val(&i.src.unwrap(), size)?;
                let (val, loc): (u32, Option<(u32, OpSize)>) = match i.dst.unwrap() {
                    Operand::Mem(m) if matches!(i.src, Some(Operand::Reg(_))) => {
                        // Register bit offsets address adjacent memory.
                        let byte_off = ((idx as i32) >> 5).wrapping_mul(4);
                        let a = self.ea(&m).wrapping_add(byte_off as u32);
                        (self.mem.read32(a)?, Some((a, OpSize::Dword)))
                    }
                    d => (self.read_val(&d, size)?, None),
                };
                let bit = idx & 31;
                let cf = (val >> bit) & 1 != 0;
                let newv = match i.op {
                    Op::Bts => val | (1 << bit),
                    Op::Btr => val & !(1 << bit),
                    Op::Btc => val ^ (1 << bit),
                    _ => val,
                };
                flags::set_bits(&mut self.cpu.eflags, CF, if cf { CF } else { 0 });
                if i.op != Op::Bt {
                    match loc {
                        Some((a, _)) => self.mem.write32(a, newv)?,
                        None => self.write_val(&i.dst.unwrap(), size, newv)?,
                    }
                }
            }
            Op::Xadd => {
                let a = self.read_val(&i.dst.unwrap(), size)?;
                let b = self.read_val(&i.src.unwrap(), size)?;
                let f = &mut self.cpu.eflags;
                let r = flags::add(f, a, b, size, true);
                self.write_val(&i.src.unwrap(), size, a)?;
                self.write_val(&i.dst.unwrap(), size, r)?;
            }
            Op::Cmpxchg => {
                let acc = match size {
                    OpSize::Byte => self.cpu.get8(Reg8::Al) as u32,
                    _ => self.cpu.regs[0] & size.mask(),
                };
                let d = self.read_val(&i.dst.unwrap(), size)?;
                let f = &mut self.cpu.eflags;
                flags::sub(f, acc, d, size, true);
                if acc == d {
                    let s = self.read_val(&i.src.unwrap(), size)?;
                    self.write_val(&i.dst.unwrap(), size, s)?;
                } else {
                    match size {
                        OpSize::Byte => self.cpu.set8(Reg8::Al, d as u8),
                        OpSize::Word => {
                            self.cpu.regs[0] = (self.cpu.regs[0] & !0xFFFF) | d;
                        }
                        OpSize::Dword => self.cpu.regs[0] = d,
                    }
                }
            }
            Op::Bswap => {
                if let Some(Operand::Reg(r)) = i.dst {
                    self.cpu.regs[r as usize] = self.cpu.regs[r as usize].swap_bytes();
                }
            }
            Op::Arpl => {
                flags::set_bits(&mut self.cpu.eflags, ZF, 0);
            }
            Op::Push => {
                let v = self.read_val(&i.dst.unwrap(), size)?;
                self.push(v, size)?;
            }
            Op::Pop => {
                let v = self.pop(size)?;
                self.write_val(&i.dst.unwrap(), size, v)?;
            }
            Op::Pusha => {
                let esp0 = self.cpu.regs[4];
                for n in 0..8 {
                    let v = if n == 4 { esp0 } else { self.cpu.regs[n] };
                    self.push(v, OpSize::Dword)?;
                }
            }
            Op::Popa => {
                for n in (0..8).rev() {
                    let v = self.pop(OpSize::Dword)?;
                    if n != 4 {
                        self.cpu.regs[n] = v;
                    }
                }
            }
            Op::Pushf => {
                let v = self.cpu.eflags | RESERVED1;
                self.push(v, OpSize::Dword)?;
            }
            Op::Popf => {
                let v = self.pop(OpSize::Dword)?;
                let settable = CF | PF | AF | ZF | SF | DF | OF;
                self.cpu.eflags = (v & settable) | RESERVED1;
            }
            Op::Sahf => {
                let ah = self.cpu.get8(Reg8::Ah) as u32;
                let mask = CF | PF | AF | ZF | SF;
                flags::set_bits(&mut self.cpu.eflags, mask, ah);
            }
            Op::Lahf => {
                let v = (self.cpu.eflags & (CF | PF | AF | ZF | SF)) | RESERVED1;
                self.cpu.set8(Reg8::Ah, v as u8);
            }
            Op::Cwde => match size {
                OpSize::Word => {
                    let al = self.cpu.get8(Reg8::Al) as i8 as i16 as u16;
                    self.cpu.regs[0] = (self.cpu.regs[0] & !0xFFFF) | al as u32;
                }
                _ => {
                    let ax = self.cpu.regs[0] as u16 as i16 as i32 as u32;
                    self.cpu.regs[0] = ax;
                }
            },
            Op::Cdq => match size {
                OpSize::Word => {
                    let sign = if self.cpu.regs[0] & 0x8000 != 0 {
                        0xFFFF
                    } else {
                        0
                    };
                    self.cpu.regs[2] = (self.cpu.regs[2] & !0xFFFF) | sign;
                }
                _ => {
                    self.cpu.regs[2] = if self.cpu.regs[0] & 0x8000_0000 != 0 {
                        0xFFFF_FFFF
                    } else {
                        0
                    };
                }
            },
            Op::Clc => flags::set_bits(f, CF, 0),
            Op::Stc => flags::set_bits(f, CF, CF),
            Op::Cmc => *f ^= CF,
            Op::Cld => flags::set_bits(f, DF, 0),
            Op::Std => flags::set_bits(f, DF, DF),
            Op::Salc => {
                let v = if self.cpu.eflags & CF != 0 { 0xFF } else { 0 };
                self.cpu.set8(Reg8::Al, v);
            }
            Op::Xlat => {
                let a = self.cpu.regs[3].wrapping_add(self.cpu.get8(Reg8::Al) as u32);
                let v = self.mem.read8(a)?;
                self.cpu.set8(Reg8::Al, v);
            }
            Op::Aaa | Op::Aas => {
                let al = self.cpu.get8(Reg8::Al);
                let ah = self.cpu.get8(Reg8::Ah);
                let adjust = (al & 0xF) > 9 || self.cpu.eflags & AF != 0;
                if adjust {
                    if i.op == Op::Aaa {
                        self.cpu.set8(Reg8::Al, al.wrapping_add(6) & 0xF);
                        self.cpu.set8(Reg8::Ah, ah.wrapping_add(1));
                    } else {
                        self.cpu.set8(Reg8::Al, al.wrapping_sub(6) & 0xF);
                        self.cpu.set8(Reg8::Ah, ah.wrapping_sub(1));
                    }
                } else {
                    self.cpu.set8(Reg8::Al, al & 0xF);
                }
                let bits = if adjust { AF | CF } else { 0 };
                flags::set_bits(&mut self.cpu.eflags, AF | CF, bits);
            }
            Op::Daa | Op::Das => {
                let al = self.cpu.get8(Reg8::Al);
                let mut v = al;
                let mut cf = self.cpu.eflags & CF != 0;
                let af = self.cpu.eflags & AF != 0;
                let mut new_af = false;
                if (al & 0xF) > 9 || af {
                    v = if i.op == Op::Daa {
                        v.wrapping_add(6)
                    } else {
                        v.wrapping_sub(6)
                    };
                    new_af = true;
                }
                if al > 0x99 || cf {
                    v = if i.op == Op::Daa {
                        v.wrapping_add(0x60)
                    } else {
                        v.wrapping_sub(0x60)
                    };
                    cf = true;
                } else {
                    cf = false;
                }
                self.cpu.set8(Reg8::Al, v);
                let f = &mut self.cpu.eflags;
                flags::zsp(f, v as u32, OpSize::Byte);
                let mut bits = 0;
                if cf {
                    bits |= CF;
                }
                if new_af {
                    bits |= AF;
                }
                flags::set_bits(f, CF | AF, bits);
            }
            Op::Aam(n) => {
                if n == 0 {
                    return Err(Fault::DivideError(eip));
                }
                let al = self.cpu.get8(Reg8::Al);
                self.cpu.set8(Reg8::Ah, al / n);
                self.cpu.set8(Reg8::Al, al % n);
                let v = self.cpu.get8(Reg8::Al) as u32;
                flags::zsp(&mut self.cpu.eflags, v, OpSize::Byte);
            }
            Op::Aad(n) => {
                let al = self.cpu.get8(Reg8::Al);
                let ah = self.cpu.get8(Reg8::Ah);
                let v = al.wrapping_add(ah.wrapping_mul(n));
                self.cpu.set8(Reg8::Al, v);
                self.cpu.set8(Reg8::Ah, 0);
                flags::zsp(&mut self.cpu.eflags, v as u32, OpSize::Byte);
            }
            Op::Cpuid => {
                // Deterministic pseudo-identification.
                let leaf = self.cpu.regs[0];
                if leaf == 0 {
                    self.cpu.regs[0] = 1;
                    self.cpu.regs[3] = u32::from_le_bytes(*b"Fisc"); // EBX
                    self.cpu.regs[2] = u32::from_le_bytes(*b"-x86"); // EDX... (toy)
                    self.cpu.regs[1] = u32::from_le_bytes(*b"Sim "); // ECX
                } else {
                    self.cpu.regs[0] = 0;
                    self.cpu.regs[1] = 0;
                    self.cpu.regs[2] = 0;
                    self.cpu.regs[3] = 0;
                }
            }
            Op::Rdtsc => {
                self.cpu.regs[0] = self.icount as u32;
                self.cpu.regs[2] = (self.icount >> 32) as u32;
            }
            Op::Bound => {
                let v = self.read_val(&i.dst.unwrap(), size)? as i32;
                let Operand::Mem(m) = i.src.unwrap() else {
                    return Err(Fault::InvalidOpcode(eip));
                };
                let a = self.ea(&m);
                let lo = self.mem.read32(a)? as i32;
                let hi = self.mem.read32(a.wrapping_add(4))? as i32;
                if v < lo || v > hi {
                    return Err(Fault::Trap(eip));
                }
            }
            Op::Str(s) => {
                return self.string_op(s, i.rep, size, next).map(|_| Flow::Next);
            }
            // ── control transfer ─────────────────────────────────────
            Op::Jcc(c) => {
                if self.cpu.cond(c) {
                    let Some(Operand::Rel(d)) = i.dst else {
                        return Err(Fault::InvalidOpcode(eip));
                    };
                    let mut t = next.wrapping_add(d as u32);
                    if size == OpSize::Word {
                        t &= 0xFFFF;
                    }
                    return Ok(Flow::Jump(t));
                }
            }
            Op::Setcc(c) => {
                let v = self.cpu.cond(c) as u32;
                self.write_val(&i.dst.unwrap(), OpSize::Byte, v)?;
            }
            Op::Jmp => {
                let Some(Operand::Rel(d)) = i.dst else {
                    return Err(Fault::InvalidOpcode(eip));
                };
                let mut t = next.wrapping_add(d as u32);
                if size == OpSize::Word {
                    t &= 0xFFFF;
                }
                return Ok(Flow::Jump(t));
            }
            Op::JmpInd => {
                let t = self.read_val(&i.dst.unwrap(), OpSize::Dword)?;
                return Ok(Flow::Jump(t));
            }
            Op::Call => {
                let Some(Operand::Rel(d)) = i.dst else {
                    return Err(Fault::InvalidOpcode(eip));
                };
                self.push(next, OpSize::Dword)?;
                let mut t = next.wrapping_add(d as u32);
                if size == OpSize::Word {
                    t &= 0xFFFF;
                }
                return Ok(Flow::Jump(t));
            }
            Op::CallInd => {
                let t = self.read_val(&i.dst.unwrap(), OpSize::Dword)?;
                self.push(next, OpSize::Dword)?;
                return Ok(Flow::Jump(t));
            }
            Op::Ret(extra) => {
                let t = self.pop(OpSize::Dword)?;
                self.cpu.regs[4] = self.cpu.regs[4].wrapping_add(extra as u32);
                return Ok(Flow::Jump(t));
            }
            Op::Leave => {
                self.cpu.regs[4] = self.cpu.regs[5];
                let v = self.pop(OpSize::Dword)?;
                self.cpu.regs[5] = v;
            }
            Op::Enter(frame, nest) => {
                self.push(self.cpu.regs[5], OpSize::Dword)?;
                let ft = self.cpu.regs[4];
                let level = nest % 32;
                if level > 0 {
                    for _ in 1..level {
                        self.cpu.regs[5] = self.cpu.regs[5].wrapping_sub(4);
                        let v = self.mem.read32(self.cpu.regs[5])?;
                        self.push(v, OpSize::Dword)?;
                    }
                    self.push(ft, OpSize::Dword)?;
                }
                self.cpu.regs[5] = ft;
                self.cpu.regs[4] = self.cpu.regs[4].wrapping_sub(frame as u32);
            }
            Op::Loop | Op::Loope | Op::Loopne => {
                let ecx = self.cpu.regs[1].wrapping_sub(1);
                self.cpu.regs[1] = ecx;
                let zf = self.cpu.eflags & ZF != 0;
                let take = ecx != 0
                    && match i.op {
                        Op::Loope => zf,
                        Op::Loopne => !zf,
                        _ => true,
                    };
                if take {
                    let Some(Operand::Rel(d)) = i.dst else {
                        return Err(Fault::InvalidOpcode(eip));
                    };
                    return Ok(Flow::Jump(next.wrapping_add(d as u32)));
                }
            }
            Op::Jecxz => {
                if self.cpu.regs[1] == 0 {
                    let Some(Operand::Rel(d)) = i.dst else {
                        return Err(Fault::InvalidOpcode(eip));
                    };
                    return Ok(Flow::Jump(next.wrapping_add(d as u32)));
                }
            }
            Op::Int(n) => {
                if n == 0x80 {
                    return Ok(Flow::Syscall(n));
                }
                return Err(Fault::Trap(eip));
            }
            Op::Int3 => return Err(Fault::Trap(eip)),
            Op::Into => {
                if self.cpu.eflags & OF != 0 {
                    return Err(Fault::Trap(eip));
                }
            }
        }
        Ok(Flow::Next)
    }

    fn mul_impl(&mut self, src: u32, size: OpSize, signed: bool) {
        match size {
            OpSize::Byte => {
                let al = self.cpu.get8(Reg8::Al);
                let r: u16 = if signed {
                    ((al as i8 as i16) * (src as u8 as i8 as i16)) as u16
                } else {
                    (al as u16) * (src as u8 as u16)
                };
                self.cpu.regs[0] = (self.cpu.regs[0] & !0xFFFF) | r as u32;
                let over = if signed {
                    (r as i16) != (r as u8 as i8 as i16)
                } else {
                    r > 0xFF
                };
                flags::set_bits(
                    &mut self.cpu.eflags,
                    CF | OF,
                    if over { CF | OF } else { 0 },
                );
            }
            OpSize::Word => {
                let ax = self.cpu.regs[0] as u16;
                let r: u32 = if signed {
                    ((ax as i16 as i32) * (src as u16 as i16 as i32)) as u32
                } else {
                    (ax as u32) * (src as u16 as u32)
                };
                self.cpu.regs[0] = (self.cpu.regs[0] & !0xFFFF) | (r & 0xFFFF);
                self.cpu.regs[2] = (self.cpu.regs[2] & !0xFFFF) | (r >> 16);
                let over = if signed {
                    (r as i32) != (r as u16 as i16 as i32)
                } else {
                    r > 0xFFFF
                };
                flags::set_bits(
                    &mut self.cpu.eflags,
                    CF | OF,
                    if over { CF | OF } else { 0 },
                );
            }
            OpSize::Dword => {
                let eax = self.cpu.regs[0];
                let r: u64 = if signed {
                    ((eax as i32 as i64) * (src as i32 as i64)) as u64
                } else {
                    (eax as u64) * (src as u64)
                };
                self.cpu.regs[0] = r as u32;
                self.cpu.regs[2] = (r >> 32) as u32;
                let over = if signed {
                    (r as i64) != (r as u32 as i32 as i64)
                } else {
                    r > 0xFFFF_FFFF
                };
                flags::set_bits(
                    &mut self.cpu.eflags,
                    CF | OF,
                    if over { CF | OF } else { 0 },
                );
            }
        }
    }

    fn div_impl(&mut self, src: u32, size: OpSize, signed: bool, eip: u32) -> Result<(), Fault> {
        match size {
            OpSize::Byte => {
                let dividend = self.cpu.regs[0] as u16;
                let divisor = src as u8;
                if divisor == 0 {
                    return Err(Fault::DivideError(eip));
                }
                if signed {
                    let dd = dividend as i16;
                    let dv = divisor as i8 as i16;
                    let q = dd.wrapping_div(dv);
                    let r = dd.wrapping_rem(dv);
                    if q > i8::MAX as i16 || q < i8::MIN as i16 {
                        return Err(Fault::DivideError(eip));
                    }
                    self.cpu.set8(Reg8::Al, q as u8);
                    self.cpu.set8(Reg8::Ah, r as u8);
                } else {
                    let q = dividend / divisor as u16;
                    let r = dividend % divisor as u16;
                    if q > 0xFF {
                        return Err(Fault::DivideError(eip));
                    }
                    self.cpu.set8(Reg8::Al, q as u8);
                    self.cpu.set8(Reg8::Ah, r as u8);
                }
            }
            OpSize::Word => {
                let dividend =
                    ((self.cpu.regs[2] as u16 as u32) << 16) | (self.cpu.regs[0] as u16 as u32);
                let divisor = src as u16;
                if divisor == 0 {
                    return Err(Fault::DivideError(eip));
                }
                if signed {
                    let dd = dividend as i32;
                    let dv = divisor as i16 as i32;
                    let q = dd.wrapping_div(dv);
                    let r = dd.wrapping_rem(dv);
                    if q > i16::MAX as i32 || q < i16::MIN as i32 {
                        return Err(Fault::DivideError(eip));
                    }
                    self.cpu.regs[0] = (self.cpu.regs[0] & !0xFFFF) | (q as u16 as u32);
                    self.cpu.regs[2] = (self.cpu.regs[2] & !0xFFFF) | (r as u16 as u32);
                } else {
                    let q = dividend / divisor as u32;
                    let r = dividend % divisor as u32;
                    if q > 0xFFFF {
                        return Err(Fault::DivideError(eip));
                    }
                    self.cpu.regs[0] = (self.cpu.regs[0] & !0xFFFF) | q;
                    self.cpu.regs[2] = (self.cpu.regs[2] & !0xFFFF) | r;
                }
            }
            OpSize::Dword => {
                let dividend = ((self.cpu.regs[2] as u64) << 32) | self.cpu.regs[0] as u64;
                if src == 0 {
                    return Err(Fault::DivideError(eip));
                }
                if signed {
                    let dd = dividend as i64;
                    let dv = src as i32 as i64;
                    if dd == i64::MIN && dv == -1 {
                        return Err(Fault::DivideError(eip));
                    }
                    let q = dd.wrapping_div(dv);
                    let r = dd.wrapping_rem(dv);
                    if q > i32::MAX as i64 || q < i32::MIN as i64 {
                        return Err(Fault::DivideError(eip));
                    }
                    self.cpu.regs[0] = q as u32;
                    self.cpu.regs[2] = r as u32;
                } else {
                    let q = dividend / src as u64;
                    let r = dividend % src as u64;
                    if q > u32::MAX as u64 {
                        return Err(Fault::DivideError(eip));
                    }
                    self.cpu.regs[0] = q as u32;
                    self.cpu.regs[2] = r as u32;
                }
            }
        }
        Ok(())
    }

    fn shift_impl(&mut self, op: Op, a: u32, cnt: u32, size: OpSize) -> u32 {
        let bits = size.bytes() * 8;
        if cnt == 0 {
            return a & size.mask();
        }
        let a = a & size.mask();
        let f = &mut self.cpu.eflags;
        match op {
            Op::Shl => {
                let r = if cnt >= bits {
                    0
                } else {
                    (a << cnt) & size.mask()
                };
                let cf = if cnt <= bits {
                    (a >> (bits - cnt)) & 1 != 0
                } else {
                    false
                };
                flags::zsp(f, r, size);
                let of = ((r & size.sign_bit()) != 0) != cf;
                let mut b = 0;
                if cf {
                    b |= CF;
                }
                if of {
                    b |= OF;
                }
                flags::set_bits(f, CF | OF, b);
                r
            }
            Op::Shr => {
                let r = if cnt >= bits { 0 } else { a >> cnt };
                let cf = if cnt <= bits {
                    (a >> (cnt - 1)) & 1 != 0
                } else {
                    false
                };
                flags::zsp(f, r, size);
                let of = a & size.sign_bit() != 0;
                let mut b = 0;
                if cf {
                    b |= CF;
                }
                if of {
                    b |= OF;
                }
                flags::set_bits(f, CF | OF, b);
                r
            }
            Op::Sar => {
                let sa = ((a << (32 - bits)) as i32) >> (32 - bits); // sign-extend to i32
                let r = if cnt >= bits {
                    ((sa >> 31) as u32) & size.mask()
                } else {
                    ((sa >> cnt) as u32) & size.mask()
                };
                let cf = if cnt <= bits {
                    ((sa >> (cnt - 1)) & 1) != 0
                } else {
                    sa < 0
                };
                flags::zsp(f, r, size);
                flags::set_bits(f, CF | OF, if cf { CF } else { 0 });
                r
            }
            Op::Rol => {
                let c = cnt % bits;
                let r = if c == 0 {
                    a
                } else {
                    ((a << c) | (a >> (bits - c))) & size.mask()
                };
                let cf = r & 1 != 0;
                flags::set_bits(f, CF, if cf { CF } else { 0 });
                r
            }
            Op::Ror => {
                let c = cnt % bits;
                let r = if c == 0 {
                    a
                } else {
                    ((a >> c) | (a << (bits - c))) & size.mask()
                };
                let cf = r & size.sign_bit() != 0;
                flags::set_bits(f, CF, if cf { CF } else { 0 });
                r
            }
            Op::Rcl | Op::Rcr => {
                let mut v = a;
                let mut cf = (*f & CF) != 0;
                for _ in 0..cnt {
                    if op == Op::Rcl {
                        let new_cf = v & size.sign_bit() != 0;
                        v = ((v << 1) | cf as u32) & size.mask();
                        cf = new_cf;
                    } else {
                        let new_cf = v & 1 != 0;
                        v = (v >> 1) | ((cf as u32) * size.sign_bit());
                        cf = new_cf;
                    }
                }
                flags::set_bits(f, CF, if cf { CF } else { 0 });
                v
            }
            _ => unreachable!(),
        }
    }

    fn string_op(
        &mut self,
        s: StrOp,
        rep: Option<RepKind>,
        size: OpSize,
        _next: u32,
    ) -> Result<(), Fault> {
        let step = size.bytes();
        let delta = |f: u32| -> u32 {
            if f & DF != 0 {
                0u32.wrapping_sub(step)
            } else {
                step
            }
        };
        loop {
            if rep.is_some() && self.cpu.regs[1] == 0 {
                break;
            }
            let esi = self.cpu.regs[6];
            let edi = self.cpu.regs[7];
            let d = delta(self.cpu.eflags);
            match s {
                StrOp::Movs => {
                    let v = match size {
                        OpSize::Byte => self.mem.read8(esi)? as u32,
                        OpSize::Word => self.mem.read16(esi)? as u32,
                        OpSize::Dword => self.mem.read32(esi)?,
                    };
                    match size {
                        OpSize::Byte => self.mem.write8(edi, v as u8)?,
                        OpSize::Word => self.mem.write16(edi, v as u16)?,
                        OpSize::Dword => self.mem.write32(edi, v)?,
                    }
                    self.cpu.regs[6] = esi.wrapping_add(d);
                    self.cpu.regs[7] = edi.wrapping_add(d);
                }
                StrOp::Stos => {
                    let v = self.cpu.regs[0];
                    match size {
                        OpSize::Byte => self.mem.write8(edi, v as u8)?,
                        OpSize::Word => self.mem.write16(edi, v as u16)?,
                        OpSize::Dword => self.mem.write32(edi, v)?,
                    }
                    self.cpu.regs[7] = edi.wrapping_add(d);
                }
                StrOp::Lods => {
                    let v = match size {
                        OpSize::Byte => self.mem.read8(esi)? as u32,
                        OpSize::Word => self.mem.read16(esi)? as u32,
                        OpSize::Dword => self.mem.read32(esi)?,
                    };
                    match size {
                        OpSize::Byte => self.cpu.set8(Reg8::Al, v as u8),
                        OpSize::Word => {
                            self.cpu.regs[0] = (self.cpu.regs[0] & !0xFFFF) | v;
                        }
                        OpSize::Dword => self.cpu.regs[0] = v,
                    }
                    self.cpu.regs[6] = esi.wrapping_add(d);
                }
                StrOp::Scas => {
                    let m = match size {
                        OpSize::Byte => self.mem.read8(edi)? as u32,
                        OpSize::Word => self.mem.read16(edi)? as u32,
                        OpSize::Dword => self.mem.read32(edi)?,
                    };
                    let acc = self.cpu.regs[0] & size.mask();
                    flags::sub(&mut self.cpu.eflags, acc, m, size, true);
                    self.cpu.regs[7] = edi.wrapping_add(d);
                }
                StrOp::Cmps => {
                    let a = match size {
                        OpSize::Byte => self.mem.read8(esi)? as u32,
                        OpSize::Word => self.mem.read16(esi)? as u32,
                        OpSize::Dword => self.mem.read32(esi)?,
                    };
                    let b = match size {
                        OpSize::Byte => self.mem.read8(edi)? as u32,
                        OpSize::Word => self.mem.read16(edi)? as u32,
                        OpSize::Dword => self.mem.read32(edi)?,
                    };
                    flags::sub(&mut self.cpu.eflags, a, b, size, true);
                    self.cpu.regs[6] = esi.wrapping_add(d);
                    self.cpu.regs[7] = edi.wrapping_add(d);
                }
            }
            match rep {
                None => break,
                Some(k) => {
                    self.cpu.regs[1] = self.cpu.regs[1].wrapping_sub(1);
                    if self.cpu.regs[1] == 0 {
                        break;
                    }
                    let zf = self.cpu.eflags & ZF != 0;
                    let term = match (k, s) {
                        (RepKind::RepE, StrOp::Scas | StrOp::Cmps) => !zf,
                        (RepKind::RepNe, StrOp::Scas | StrOp::Cmps) => zf,
                        _ => false,
                    };
                    if term {
                        break;
                    }
                }
            }
        }
        Ok(())
    }
}

pub(crate) enum Flow {
    Next,
    Jump(u32),
    Syscall(u8),
}

/// Advance the rolling branch-history signature with the next dispatch
/// address (a cheap shift-xor — only trace-key quality depends on it,
/// never an outcome).
#[inline]
fn hist_step(h: u8, eip: u32) -> u8 {
    (h << 1) ^ ((eip >> 2) as u8)
}

/// 32-bit ALU step shared by the lowered `AluRR`/`AluRI`/`AluMI` forms:
/// updates the flags exactly as the generic [`Machine::exec`] path does
/// and returns the result to write back, or `None` for the flag-only
/// operations (`cmp`, `test`). Always inlined so the per-kind handlers
/// below constant-fold the `match` away.
#[inline(always)]
fn alu32(k: AluK, f: &mut u32, a: u32, b: u32) -> Option<u32> {
    match k {
        AluK::Add => Some(flags::add(f, a, b, OpSize::Dword, true)),
        AluK::Sub => Some(flags::sub(f, a, b, OpSize::Dword, true)),
        AluK::And => Some(flags::logic(f, a & b, OpSize::Dword)),
        AluK::Or => Some(flags::logic(f, a | b, OpSize::Dword)),
        AluK::Xor => Some(flags::logic(f, a ^ b, OpSize::Dword)),
        AluK::Cmp => {
            flags::sub(f, a, b, OpSize::Dword, true);
            None
        }
        AluK::Test => {
            flags::logic(f, a & b, OpSize::Dword);
            None
        }
    }
}

/// 32-bit two/three-operand `imul` step: exactly the `Imul2`/`Imul3`
/// flag behaviour of the generic [`Machine::exec`] path.
#[inline]
fn imul32(f: &mut u32, lhs: u32, rhs: u32) -> u32 {
    let full = (lhs as i32 as i64) * (rhs as i32 as i64);
    let r = full as u32;
    flags::zsp(f, r, OpSize::Dword);
    let overflow = full != (r as i32 as i64);
    flags::set_bits(f, CF | OF, if overflow { CF | OF } else { 0 });
    r
}

/// A µop executor. Each lowered shape resolves to one of these at block
/// build time ([`LInst::new`]), so the block executors dispatch through
/// a direct function-pointer call instead of matching over every
/// [`UOp`] variant per retired instruction (threaded dispatch). Every
/// handler is an exact specialization of the corresponding
/// [`Machine::exec`] path — same flag helpers, same memory-access
/// order, same faults — so block execution stays bit-identical to the
/// per-step engine (the `block_engine_matches_stepwise` property pins
/// this).
pub(crate) type Handler = fn(&mut Machine, &LInst) -> Result<Flow, Fault>;

/// Resolve the execution handler for a lowered shape. ALU kinds get
/// per-kind handlers so the flag computation is a straight-line
/// specialization rather than a runtime dispatch on [`AluK`].
pub(crate) fn handler_of(uop: UOp) -> Handler {
    match uop {
        UOp::MovRR { .. } => h_mov_rr,
        UOp::MovRI { .. } => h_mov_ri,
        UOp::MovRM { .. } => h_mov_rm,
        UOp::MovMR { .. } => h_mov_mr,
        UOp::MovM8R8 { .. } => h_mov_m8r8,
        UOp::MovsxR32M8 { .. } => h_movsx_r32m8,
        UOp::MovzxR32M8 { .. } => h_movzx_r32m8,
        UOp::Lea { .. } => h_lea,
        UOp::PushR { .. } => h_push_r,
        UOp::PushI { .. } => h_push_i,
        UOp::PopR { .. } => h_pop_r,
        UOp::IncR { .. } => h_inc_r,
        UOp::DecR { .. } => h_dec_r,
        UOp::AluRR { k, .. } => match k {
            AluK::Add => h_add_rr,
            AluK::Sub => h_sub_rr,
            AluK::And => h_and_rr,
            AluK::Or => h_or_rr,
            AluK::Xor => h_xor_rr,
            AluK::Cmp => h_cmp_rr,
            AluK::Test => h_test_rr,
        },
        UOp::AluRI { k, .. } => match k {
            AluK::Add => h_add_ri,
            AluK::Sub => h_sub_ri,
            AluK::And => h_and_ri,
            AluK::Or => h_or_ri,
            AluK::Xor => h_xor_ri,
            AluK::Cmp => h_cmp_ri,
            AluK::Test => h_test_ri,
        },
        UOp::AluMI { .. } => h_alu_mi,
        UOp::JmpRel { .. } => h_jmp_rel,
        UOp::JccRel { .. } => h_jcc_rel,
        UOp::CallRel { .. } => h_call_rel,
        UOp::Ret { .. } => h_ret,
        UOp::Leave => h_leave,
        UOp::Nop => h_nop,
        UOp::Cdq => h_cdq,
        UOp::DivR { .. } => h_div_r,
        UOp::DivM { .. } => h_div_m,
        UOp::MulR { .. } => h_mul_r,
        UOp::ImulRR { .. } => h_imul_rr,
        UOp::ImulRM { .. } => h_imul_rm,
        UOp::ImulRRI { .. } => h_imul_rri,
        UOp::Int80 => h_int80,
        UOp::Slow => h_slow,
    }
}

fn h_mov_rr(m: &mut Machine, li: &LInst) -> Result<Flow, Fault> {
    let UOp::MovRR { d, s } = li.uop else {
        unreachable!()
    };
    m.cpu.regs[d as usize] = m.cpu.regs[s as usize];
    Ok(Flow::Next)
}

fn h_mov_ri(m: &mut Machine, li: &LInst) -> Result<Flow, Fault> {
    let UOp::MovRI { d, v } = li.uop else {
        unreachable!()
    };
    m.cpu.regs[d as usize] = v;
    Ok(Flow::Next)
}

fn h_mov_rm(m: &mut Machine, li: &LInst) -> Result<Flow, Fault> {
    let UOp::MovRM { d, ea } = li.uop else {
        unreachable!()
    };
    let v = m.mem.read32(m.ea_lowered(ea))?;
    m.cpu.regs[d as usize] = v;
    Ok(Flow::Next)
}

fn h_mov_mr(m: &mut Machine, li: &LInst) -> Result<Flow, Fault> {
    let UOp::MovMR { ea, s } = li.uop else {
        unreachable!()
    };
    m.mem.write32(m.ea_lowered(ea), m.cpu.regs[s as usize])?;
    Ok(Flow::Next)
}

fn h_mov_m8r8(m: &mut Machine, li: &LInst) -> Result<Flow, Fault> {
    let UOp::MovM8R8 { ea, s } = li.uop else {
        unreachable!()
    };
    let v = m.cpu.get8(s);
    m.mem.write8(m.ea_lowered(ea), v)?;
    Ok(Flow::Next)
}

fn h_movsx_r32m8(m: &mut Machine, li: &LInst) -> Result<Flow, Fault> {
    let UOp::MovsxR32M8 { d, ea } = li.uop else {
        unreachable!()
    };
    let v = m.mem.read8(m.ea_lowered(ea))?;
    m.cpu.regs[d as usize] = v as i8 as i32 as u32;
    Ok(Flow::Next)
}

fn h_movzx_r32m8(m: &mut Machine, li: &LInst) -> Result<Flow, Fault> {
    let UOp::MovzxR32M8 { d, ea } = li.uop else {
        unreachable!()
    };
    let v = m.mem.read8(m.ea_lowered(ea))?;
    m.cpu.regs[d as usize] = v as u32;
    Ok(Flow::Next)
}

fn h_lea(m: &mut Machine, li: &LInst) -> Result<Flow, Fault> {
    let UOp::Lea { d, ea } = li.uop else {
        unreachable!()
    };
    m.cpu.regs[d as usize] = m.ea_lowered(ea);
    Ok(Flow::Next)
}

fn h_push_r(m: &mut Machine, li: &LInst) -> Result<Flow, Fault> {
    let UOp::PushR { s } = li.uop else {
        unreachable!()
    };
    m.push(m.cpu.regs[s as usize], OpSize::Dword)?;
    Ok(Flow::Next)
}

fn h_push_i(m: &mut Machine, li: &LInst) -> Result<Flow, Fault> {
    let UOp::PushI { v } = li.uop else {
        unreachable!()
    };
    m.push(v, OpSize::Dword)?;
    Ok(Flow::Next)
}

fn h_pop_r(m: &mut Machine, li: &LInst) -> Result<Flow, Fault> {
    let UOp::PopR { d } = li.uop else {
        unreachable!()
    };
    let v = m.pop(OpSize::Dword)?;
    m.cpu.regs[d as usize] = v;
    Ok(Flow::Next)
}

fn h_inc_r(m: &mut Machine, li: &LInst) -> Result<Flow, Fault> {
    let UOp::IncR { d } = li.uop else {
        unreachable!()
    };
    let a = m.cpu.regs[d as usize];
    let r = flags::add(&mut m.cpu.eflags, a, 1, OpSize::Dword, false);
    m.cpu.regs[d as usize] = r;
    Ok(Flow::Next)
}

fn h_dec_r(m: &mut Machine, li: &LInst) -> Result<Flow, Fault> {
    let UOp::DecR { d } = li.uop else {
        unreachable!()
    };
    let a = m.cpu.regs[d as usize];
    let r = flags::sub(&mut m.cpu.eflags, a, 1, OpSize::Dword, false);
    m.cpu.regs[d as usize] = r;
    Ok(Flow::Next)
}

// One RR and one RI handler per ALU kind: `alu32` is `inline(always)`,
// so each expansion folds to that kind's straight-line flag code.
macro_rules! alu_handlers {
    ($($rr:ident $ri:ident $k:ident),* $(,)?) => {$(
        fn $rr(m: &mut Machine, li: &LInst) -> Result<Flow, Fault> {
            let UOp::AluRR { d, s, .. } = li.uop else {
                unreachable!()
            };
            let a = m.cpu.regs[d as usize];
            let b = m.cpu.regs[s as usize];
            if let Some(r) = alu32(AluK::$k, &mut m.cpu.eflags, a, b) {
                m.cpu.regs[d as usize] = r;
            }
            Ok(Flow::Next)
        }
        fn $ri(m: &mut Machine, li: &LInst) -> Result<Flow, Fault> {
            let UOp::AluRI { d, v, .. } = li.uop else {
                unreachable!()
            };
            let a = m.cpu.regs[d as usize];
            if let Some(r) = alu32(AluK::$k, &mut m.cpu.eflags, a, v) {
                m.cpu.regs[d as usize] = r;
            }
            Ok(Flow::Next)
        }
    )*};
}

alu_handlers!(
    h_add_rr h_add_ri Add,
    h_sub_rr h_sub_ri Sub,
    h_and_rr h_and_ri And,
    h_or_rr h_or_ri Or,
    h_xor_rr h_xor_ri Xor,
    h_cmp_rr h_cmp_ri Cmp,
    h_test_rr h_test_ri Test,
);

fn h_alu_mi(m: &mut Machine, li: &LInst) -> Result<Flow, Fault> {
    let UOp::AluMI { k, ea, v } = li.uop else {
        unreachable!()
    };
    let addr = m.ea_lowered(ea);
    let a = m.mem.read32(addr)?;
    // Flags are computed before the writeback attempt, as in the
    // generic path.
    if let Some(r) = alu32(k, &mut m.cpu.eflags, a, v) {
        m.mem.write32(addr, r)?;
    }
    Ok(Flow::Next)
}

fn h_jmp_rel(_m: &mut Machine, li: &LInst) -> Result<Flow, Fault> {
    let UOp::JmpRel { t } = li.uop else {
        unreachable!()
    };
    Ok(Flow::Jump(t))
}

fn h_jcc_rel(m: &mut Machine, li: &LInst) -> Result<Flow, Fault> {
    let UOp::JccRel { c, t } = li.uop else {
        unreachable!()
    };
    Ok(if m.cpu.cond(c) {
        Flow::Jump(t)
    } else {
        Flow::Next
    })
}

fn h_call_rel(m: &mut Machine, li: &LInst) -> Result<Flow, Fault> {
    let UOp::CallRel { t } = li.uop else {
        unreachable!()
    };
    m.push(li.next, OpSize::Dword)?;
    Ok(Flow::Jump(t))
}

fn h_ret(m: &mut Machine, li: &LInst) -> Result<Flow, Fault> {
    let UOp::Ret { extra } = li.uop else {
        unreachable!()
    };
    let t = m.pop(OpSize::Dword)?;
    m.cpu.regs[4] = m.cpu.regs[4].wrapping_add(extra as u32);
    Ok(Flow::Jump(t))
}

fn h_leave(m: &mut Machine, _li: &LInst) -> Result<Flow, Fault> {
    m.cpu.regs[4] = m.cpu.regs[5];
    let v = m.pop(OpSize::Dword)?;
    m.cpu.regs[5] = v;
    Ok(Flow::Next)
}

fn h_nop(_m: &mut Machine, _li: &LInst) -> Result<Flow, Fault> {
    Ok(Flow::Next)
}

fn h_cdq(m: &mut Machine, _li: &LInst) -> Result<Flow, Fault> {
    m.cpu.regs[2] = if m.cpu.regs[0] & 0x8000_0000 != 0 {
        0xFFFF_FFFF
    } else {
        0
    };
    Ok(Flow::Next)
}

fn h_div_r(m: &mut Machine, li: &LInst) -> Result<Flow, Fault> {
    let UOp::DivR { s, signed } = li.uop else {
        unreachable!()
    };
    let src = m.cpu.regs[s as usize];
    m.div_impl(src, OpSize::Dword, signed, li.addr)?;
    Ok(Flow::Next)
}

fn h_div_m(m: &mut Machine, li: &LInst) -> Result<Flow, Fault> {
    let UOp::DivM { ea, signed } = li.uop else {
        unreachable!()
    };
    let src = m.mem.read32(m.ea_lowered(ea))?;
    m.div_impl(src, OpSize::Dword, signed, li.addr)?;
    Ok(Flow::Next)
}

fn h_mul_r(m: &mut Machine, li: &LInst) -> Result<Flow, Fault> {
    let UOp::MulR { s, signed } = li.uop else {
        unreachable!()
    };
    let src = m.cpu.regs[s as usize];
    m.mul_impl(src, OpSize::Dword, signed);
    Ok(Flow::Next)
}

fn h_imul_rr(m: &mut Machine, li: &LInst) -> Result<Flow, Fault> {
    let UOp::ImulRR { d, s } = li.uop else {
        unreachable!()
    };
    let (lhs, rhs) = (m.cpu.regs[d as usize], m.cpu.regs[s as usize]);
    m.cpu.regs[d as usize] = imul32(&mut m.cpu.eflags, lhs, rhs);
    Ok(Flow::Next)
}

fn h_imul_rm(m: &mut Machine, li: &LInst) -> Result<Flow, Fault> {
    let UOp::ImulRM { d, ea } = li.uop else {
        unreachable!()
    };
    // Memory read (the only faulting step) before any flag write, as in
    // the generic path's operand-read order.
    let rhs = m.mem.read32(m.ea_lowered(ea))?;
    let lhs = m.cpu.regs[d as usize];
    m.cpu.regs[d as usize] = imul32(&mut m.cpu.eflags, lhs, rhs);
    Ok(Flow::Next)
}

fn h_imul_rri(m: &mut Machine, li: &LInst) -> Result<Flow, Fault> {
    let UOp::ImulRRI { d, s, v } = li.uop else {
        unreachable!()
    };
    let lhs = m.cpu.regs[s as usize];
    m.cpu.regs[d as usize] = imul32(&mut m.cpu.eflags, lhs, v);
    Ok(Flow::Next)
}

fn h_int80(_m: &mut Machine, _li: &LInst) -> Result<Flow, Fault> {
    Ok(Flow::Syscall(0x80))
}

fn h_slow(m: &mut Machine, li: &LInst) -> Result<Flow, Fault> {
    m.exec(&li.inst, li.addr, li.next)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mem::{Perms, Region};

    /// Build a machine with the given text at 0x1000, a stack at
    /// 0x8000..0x9000 (ESP=0x9000) and data at 0x2000.
    fn machine(text: Vec<u8>) -> Machine {
        let mut mem = Memory::new();
        mem.map(Region::with_data("text", 0x1000, text, Perms::RX))
            .unwrap();
        mem.map(Region::zeroed("data", 0x2000, 0x1000, Perms::RW))
            .unwrap();
        mem.map(Region::zeroed("stack", 0x8000, 0x1000, Perms::RW))
            .unwrap();
        let mut m = Machine::new(mem);
        m.cpu.eip = 0x1000;
        m.cpu.regs[4] = 0x9000;
        m
    }

    fn run_steps(m: &mut Machine, n: usize) {
        for _ in 0..n {
            assert_eq!(m.step(), StepEvent::Executed, "at eip={:#x}", m.cpu.eip);
        }
    }

    #[test]
    fn restore_count_is_monotonic_across_rewinds() {
        // mov eax, 5; inc eax
        let mut m = machine(vec![0xB8, 5, 0, 0, 0, 0x40]);
        assert_eq!(m.restore_count(), 0);
        run_steps(&mut m, 1);
        let snap = m.snapshot();
        for expected in 1..=3 {
            run_steps(&mut m, 1);
            m.restore(&snap);
            assert_eq!(m.restore_count(), expected);
            // The counter is replay work performed, not snapshot state:
            // rewinding must not rewind it.
            assert_eq!(m.icount, 1);
        }
    }

    #[test]
    fn footprint_marks_fetched_bytes_on_both_engines() {
        // mov eax, 5; mov ebx, 7; add eax, ebx  (12 bytes at 0x1000)
        let text = vec![0xB8, 5, 0, 0, 0, 0xBB, 7, 0, 0, 0, 0x01, 0xD8];
        for block_engine in [false, true] {
            let mut m = machine(text.clone());
            m.set_block_engine(block_engine);
            m.enable_footprint();
            assert!(m.footprint_enabled());
            m.add_breakpoint(0x100C);
            assert_eq!(m.run_until_event(100), RunOutcome::Breakpoint(0x100C));
            let fp = m.take_footprint().expect("footprint was enabled");
            assert!(!m.footprint_enabled());
            assert!(fp.contains(0x1000) && fp.contains(0x100B));
            assert!(!fp.contains(0x100C));
            assert_eq!(fp.ranges(), vec![(0x1000, 12)]);
        }
    }

    #[test]
    fn footprint_survives_restore_and_unions_replays() {
        // Two disjoint paths from a common prefix:
        //   0x1000: test eax,eax; je +2; inc ebx; inc ecx
        // EAX=0 takes the jump (skips inc ebx); EAX=1 falls through.
        let text = vec![0x85, 0xC0, 0x74, 0x01, 0x43, 0x41];
        let mut m = machine(text);
        m.enable_footprint();
        let snap = m.snapshot();
        // Replay 1: jump taken — byte 0x1004 (inc ebx) never fetched
        // on the per-step engine.
        m.cpu.regs[0] = 0;
        run_steps(&mut m, 3);
        m.restore(&snap);
        // Replay 2: falls through — fetches 0x1004 too.
        m.cpu.regs[0] = 1;
        run_steps(&mut m, 4);
        let fp = m.take_footprint().unwrap();
        // The union of both replays covers the whole sequence even
        // though neither single replay did, and restore() did not
        // rewind the marks from replay 1.
        assert_eq!(fp.ranges(), vec![(0x1000, 6)]);
    }

    #[test]
    fn footprint_ranges_coalesce_and_spill_merges() {
        let mut m = machine(vec![0x90]);
        m.enable_footprint();
        let mut fp = m.take_footprint().unwrap();
        // Disjoint marks stay separate; adjacent/overlapping merge.
        fp.mark_range(0x1000, 4);
        fp.mark_range(0x1004, 4); // adjacent → coalesces
        fp.mark_range(0x1010, 2); // gap → separate
        fp.mark_range(0x1011, 5); // overlap → extends
        assert_eq!(fp.ranges(), vec![(0x1000, 8), (0x1010, 6)]);
        // Word-boundary straddle: a range crossing a 64-bit word
        // boundary of the bitmap is marked contiguously.
        fp.mark_range(0x1000 + 60, 10);
        assert_eq!(fp.ranges(), vec![(0x1000, 8), (0x1010, 6), (0x103C, 10)]);
        assert!(fp.contains(0x103F) && fp.contains(0x1040) && fp.contains(0x1045));
        assert!(!fp.contains(0x1046));
        // Out-of-bitmap addresses land in the spill list; contiguous
        // marks coalesce there too.
        fp.mark_range(0x8000, 2);
        fp.mark_range(0x8002, 2);
        assert!(fp.contains(0x8003));
        assert!(!fp.contains(0x8004));
        assert!(fp.ranges().contains(&(0x8000, 4)));
        // Zero-length marks are ignored.
        fp.mark_range(0x9000, 0);
        assert!(!fp.contains(0x9000));
    }

    #[test]
    fn mov_add_sequence() {
        // mov eax, 5; mov ebx, 7; add eax, ebx
        let mut m = machine(vec![0xB8, 5, 0, 0, 0, 0xBB, 7, 0, 0, 0, 0x01, 0xD8]);
        run_steps(&mut m, 3);
        assert_eq!(m.cpu.regs[0], 12);
        assert_eq!(m.icount, 3);
    }

    #[test]
    fn push_pop_stack_discipline() {
        // push 0x2000; pop eax
        let mut m = machine(vec![0x68, 0x00, 0x20, 0x00, 0x00, 0x58]);
        run_steps(&mut m, 1);
        assert_eq!(m.cpu.regs[4], 0x8FFC);
        run_steps(&mut m, 1);
        assert_eq!(m.cpu.regs[0], 0x2000);
        assert_eq!(m.cpu.regs[4], 0x9000);
    }

    #[test]
    fn je_taken_and_not_taken() {
        // xor eax, eax; test eax, eax; je +2; inc ebx; inc ecx
        let text = vec![0x31, 0xC0, 0x85, 0xC0, 0x74, 0x01, 0x43, 0x41];
        let mut m = machine(text);
        run_steps(&mut m, 4);
        // je taken: skipped inc ebx, executed inc ecx.
        assert_eq!(m.cpu.regs[3], 0);
        assert_eq!(m.cpu.regs[1], 1);

        // mov eax,1; test eax,eax; je +2; inc ebx; inc ecx
        let text = vec![0xB8, 1, 0, 0, 0, 0x85, 0xC0, 0x74, 0x01, 0x43, 0x41];
        let mut m = machine(text);
        run_steps(&mut m, 5);
        assert_eq!(m.cpu.regs[3], 1);
        assert_eq!(m.cpu.regs[1], 1);
    }

    #[test]
    fn call_and_ret() {
        // call +3; inc ebx; (jmp to end); [target]: mov eax, 9; ret
        // layout: 0x1000: E8 04 00 00 00 (call 0x1009)
        //         0x1005: 43 (inc ebx)
        //         0x1006: EB 06 (jmp 0x100E)
        //         0x1008: 90
        //         0x1009: B8 09 00 00 00? overlaps; use simpler layout:
        let text = vec![
            0xE8, 0x02, 0x00, 0x00, 0x00, // call 0x1007
            0x43, // inc ebx
            0xF4, // hlt (should not execute)
            0xB8, 0x09, 0x00, 0x00, 0x00, // 0x1007: mov eax,9
            0xC3, // ret
        ];
        let mut m = machine(text);
        run_steps(&mut m, 3); // call, mov, ret
        assert_eq!(m.cpu.regs[0], 9);
        assert_eq!(m.cpu.eip, 0x1005);
        run_steps(&mut m, 1); // inc ebx
        assert_eq!(m.cpu.regs[3], 1);
    }

    #[test]
    fn syscall_event() {
        // mov eax, 1; int 0x80
        let mut m = machine(vec![0xB8, 1, 0, 0, 0, 0xCD, 0x80]);
        run_steps(&mut m, 1);
        assert_eq!(m.step(), StepEvent::Syscall(0x80));
        assert_eq!(m.cpu.eip, 0x1007); // advanced past int
    }

    #[test]
    fn invalid_opcode_faults_sigill() {
        // 0x0F 0x0B = ud2
        let mut m = machine(vec![0x0F, 0x0B]);
        let StepEvent::Fault(f) = m.step() else {
            panic!("expected fault")
        };
        assert_eq!(f.signal_name(), "SIGILL");
        assert_eq!(m.cpu.eip, 0x1000); // eip not advanced
    }

    #[test]
    fn wild_store_faults_sigsegv() {
        // mov [0x5000], eax — unmapped
        let mut m = machine(vec![0xA3, 0x00, 0x50, 0x00, 0x00]);
        let StepEvent::Fault(f) = m.step() else {
            panic!("expected fault")
        };
        assert_eq!(f.signal_name(), "SIGSEGV");
    }

    #[test]
    fn wild_jump_faults_fetch() {
        // jmp -0x1000 (to unmapped 0x5)
        let mut m = machine(vec![0xE9, 0x00, 0xF0, 0xFF, 0xFF]);
        assert_eq!(m.step(), StepEvent::Executed);
        let StepEvent::Fault(f) = m.step() else {
            panic!("expected fault")
        };
        assert!(matches!(f, Fault::FetchFault(_)));
    }

    #[test]
    fn divide_by_zero_faults_sigfpe() {
        // xor ecx, ecx; mov eax, 5; div ecx
        let mut m = machine(vec![0x31, 0xC9, 0xB8, 5, 0, 0, 0, 0xF7, 0xF1]);
        run_steps(&mut m, 2);
        let StepEvent::Fault(f) = m.step() else {
            panic!("expected fault")
        };
        assert_eq!(f.signal_name(), "SIGFPE");
    }

    #[test]
    fn div_and_idiv_results() {
        // mov edx,0; mov eax,100; mov ecx,7; div ecx
        let mut m = machine(vec![
            0xBA, 0, 0, 0, 0, 0xB8, 100, 0, 0, 0, 0xB9, 7, 0, 0, 0, 0xF7, 0xF1,
        ]);
        run_steps(&mut m, 4);
        assert_eq!(m.cpu.regs[0], 14);
        assert_eq!(m.cpu.regs[2], 2);
        // idiv: -100 / 7 = -14 rem -2
        let mut m = machine(vec![
            0xB8, 0x9C, 0xFF, 0xFF, 0xFF, // mov eax, -100
            0x99, // cdq
            0xB9, 7, 0, 0, 0, // mov ecx, 7
            0xF7, 0xF9, // idiv ecx
        ]);
        run_steps(&mut m, 4);
        assert_eq!(m.cpu.regs[0] as i32, -14);
        assert_eq!(m.cpu.regs[2] as i32, -2);
    }

    #[test]
    fn breakpoint_pauses_before_instruction() {
        let mut m = machine(vec![0x40, 0x40, 0x40]); // inc eax x3
        m.add_breakpoint(0x1001);
        let out = m.run_until_event(100);
        assert_eq!(out, RunOutcome::Breakpoint(0x1001));
        assert_eq!(m.cpu.regs[0], 1); // only first inc ran
        assert!(m.remove_breakpoint(0x1001));
        assert!(!m.remove_breakpoint(0x1001));
    }

    #[test]
    fn budget_exhaustion() {
        // jmp self
        let mut m = machine(vec![0xEB, 0xFE]);
        assert_eq!(m.run_until_event(1000), RunOutcome::Budget);
        assert_eq!(m.icount, 1000);
    }

    #[test]
    fn rep_movsb_copies() {
        // esi=0x2000, edi=0x2010, ecx=4; rep movsb
        let mut m = machine(vec![0xF3, 0xA4]);
        m.mem.write_bytes(0x2000, b"abcd").unwrap();
        m.cpu.regs[6] = 0x2000;
        m.cpu.regs[7] = 0x2010;
        m.cpu.regs[1] = 4;
        run_steps(&mut m, 1);
        assert_eq!(m.mem.read_bytes(0x2010, 4).unwrap(), b"abcd");
        assert_eq!(m.cpu.regs[1], 0);
        assert_eq!(m.cpu.regs[6], 0x2004);
    }

    #[test]
    fn repe_cmpsb_compares() {
        let mut m = machine(vec![0xF3, 0xA6]);
        m.mem.write_bytes(0x2000, b"abcX").unwrap();
        m.mem.write_bytes(0x2010, b"abcY").unwrap();
        m.cpu.regs[6] = 0x2000;
        m.cpu.regs[7] = 0x2010;
        m.cpu.regs[1] = 4;
        run_steps(&mut m, 1);
        // Stops on the mismatch at offset 3; ZF clear.
        assert_eq!(m.cpu.eflags & ZF, 0);
        assert_eq!(m.cpu.regs[1], 0);
    }

    #[test]
    fn string_op_faults_propagate() {
        // rep stosb into unmapped memory
        let mut m = machine(vec![0xF3, 0xAA]);
        m.cpu.regs[7] = 0x5000;
        m.cpu.regs[1] = 10;
        let StepEvent::Fault(f) = m.step() else {
            panic!("expected fault")
        };
        assert_eq!(f.signal_name(), "SIGSEGV");
    }

    #[test]
    fn leave_restores_frame() {
        // push ebp; mov ebp, esp; sub esp, 0x10; leave; ret would need stack
        let mut m = machine(vec![0x55, 0x89, 0xE5, 0x83, 0xEC, 0x10, 0xC9]);
        m.cpu.regs[5] = 0xAAAA;
        run_steps(&mut m, 4);
        assert_eq!(m.cpu.regs[5], 0xAAAA);
        assert_eq!(m.cpu.regs[4], 0x9000);
    }

    #[test]
    fn setcc_materializes_flag() {
        // cmp eax, 0 ; sete al
        let mut m = machine(vec![0x83, 0xF8, 0x00, 0x0F, 0x94, 0xC0]);
        run_steps(&mut m, 2);
        assert_eq!(m.cpu.regs[0] & 0xFF, 1);
    }

    #[test]
    fn movzx_movsx() {
        // mov al, 0x80; movzx ebx, al; movsx ecx, al
        let mut m = machine(vec![0xB0, 0x80, 0x0F, 0xB6, 0xD8, 0x0F, 0xBE, 0xC8]);
        run_steps(&mut m, 3);
        assert_eq!(m.cpu.regs[3], 0x80);
        assert_eq!(m.cpu.regs[1], 0xFFFF_FF80);
    }

    #[test]
    fn int3_faults_trap() {
        let mut m = machine(vec![0xCC]);
        let StepEvent::Fault(f) = m.step() else {
            panic!("expected fault")
        };
        assert_eq!(f, Fault::Trap(0x1000));
    }

    #[test]
    fn conditions_cover_both_polarities() {
        let mut cpu = Cpu::new();
        cpu.eflags = ZF;
        assert!(cpu.cond(Cond::E));
        assert!(!cpu.cond(Cond::Ne));
        assert!(cpu.cond(Cond::Be));
        assert!(!cpu.cond(Cond::A));
        assert!(cpu.cond(Cond::Le));
        cpu.eflags = SF;
        assert!(cpu.cond(Cond::S));
        assert!(cpu.cond(Cond::L)); // SF != OF
        assert!(!cpu.cond(Cond::Ge));
        cpu.eflags = SF | OF;
        assert!(cpu.cond(Cond::Ge));
        cpu.eflags = CF;
        assert!(cpu.cond(Cond::B));
        assert!(!cpu.cond(Cond::Nb));
    }

    #[test]
    fn pusha_popa_roundtrip() {
        let mut m = machine(vec![0x60, 0x61]);
        for n in 0..8 {
            if n != 4 {
                m.cpu.regs[n] = 0x100 + n as u32;
            }
        }
        let before = m.cpu.regs;
        run_steps(&mut m, 2);
        assert_eq!(m.cpu.regs, before);
    }

    #[test]
    fn xchg_reg_mem() {
        // mov [0x2000], eax via xchg
        let mut m = machine(vec![0x87, 0x05, 0x00, 0x20, 0x00, 0x00]);
        m.cpu.regs[0] = 42;
        m.mem.write32(0x2000, 7).unwrap();
        run_steps(&mut m, 1);
        assert_eq!(m.cpu.regs[0], 7);
        assert_eq!(m.mem.read32(0x2000).unwrap(), 42);
    }

    #[test]
    fn shifts_behave() {
        // mov eax, 3; shl eax, 4 => 48
        let mut m = machine(vec![0xB8, 3, 0, 0, 0, 0xC1, 0xE0, 0x04]);
        run_steps(&mut m, 2);
        assert_eq!(m.cpu.regs[0], 48);
        // sar of negative keeps sign: mov eax,-8; sar eax,1 => -4
        let mut m = machine(vec![0xB8, 0xF8, 0xFF, 0xFF, 0xFF, 0xD1, 0xF8]);
        run_steps(&mut m, 2);
        assert_eq!(m.cpu.regs[0] as i32, -4);
    }

    #[test]
    fn imul3_sets_result() {
        // imul eax, ecx, 10
        let mut m = machine(vec![0x6B, 0xC1, 0x0A]);
        m.cpu.regs[1] = 7;
        run_steps(&mut m, 1);
        assert_eq!(m.cpu.regs[0], 70);
    }

    #[test]
    fn indirect_call_through_register() {
        // mov eax, 0x1008; call eax; hlt; [0x1008]: ret
        let mut m = machine(vec![
            0xB8, 0x08, 0x10, 0x00, 0x00, // mov eax, 0x1008
            0xFF, 0xD0, // call eax
            0xF4, // 0x1007: hlt (skipped by ret to here? no: ret to 0x1007)
            0xC3, // 0x1008: ret
        ]);
        run_steps(&mut m, 3);
        assert_eq!(m.cpu.eip, 0x1007);
    }

    #[test]
    fn loop_decrements_ecx() {
        // mov ecx, 3; [l]: inc eax; loop l
        let mut m = machine(vec![0xB9, 3, 0, 0, 0, 0x40, 0xE2, 0xFD]);
        run_steps(&mut m, 1 + 3 * 2);
        assert_eq!(m.cpu.regs[0], 3);
        assert_eq!(m.cpu.regs[1], 0);
    }

    #[test]
    fn rel16_branch_truncates_eip_and_faults() {
        // 66 E9 00 00: jmp rel16 0 -> eip &= 0xFFFF -> unmapped, fetch fault
        let mut m = machine(vec![0x66, 0xE9, 0x00, 0x00]);
        assert_eq!(m.step(), StepEvent::Executed);
        let StepEvent::Fault(f) = m.step() else {
            panic!("expected fetch fault")
        };
        assert!(matches!(f, Fault::FetchFault(_)));
    }

    #[test]
    fn flipped_je_to_jne_takes_other_path() {
        // The core phenomenon of the paper, at machine level:
        //   xor eax,eax; test eax,eax; J? +1; inc ebx; inc ecx
        let good = vec![0x31, 0xC0, 0x85, 0xC0, 0x74, 0x01, 0x43, 0x41];
        let mut flipped = good.clone();
        flipped[4] ^= 0x01; // je -> jne
        let mut m1 = machine(good);
        run_steps(&mut m1, 4);
        let mut m2 = machine(flipped);
        run_steps(&mut m2, 5);
        assert_eq!(m1.cpu.regs[3], 0); // je skipped inc ebx
        assert_eq!(m2.cpu.regs[3], 1); // jne fell through into it
    }
}
