//! Differential tests: the checkpointed group runner must be observably
//! indistinguishable from booting every experiment from scratch.
//!
//! `run_injection_group` replays a snapshot taken at the breakpoint for
//! every byte×bit of an instruction; these tests re-run the same pinned
//! target slices through the one-boot-per-experiment `run_injection`
//! oracle and require the full `InjectionRun` records — outcome class,
//! activation, stop reason, client verdict, crash latency, transient
//! deviation flag and divergence text — to agree field for field, for
//! both servers and both encodings.

use fisec_apps::AppSpec;
use fisec_encoding::EncodingScheme;
use fisec_inject::{
    enumerate_targets, golden_run, golden_run_opts, run_injection, run_injection_group,
    run_injection_group_metered_opts, EngineOpts, InjectionTarget, OutcomeClass,
};

/// Group a target slice into contiguous same-address runs.
fn by_addr(targets: &[InjectionTarget]) -> Vec<&[InjectionTarget]> {
    let mut groups = Vec::new();
    let mut start = 0;
    for i in 1..=targets.len() {
        if i == targets.len() || targets[i].addr != targets[start].addr {
            groups.push(&targets[start..i]);
            start = i;
        }
    }
    groups
}

/// Run every target in `slice` through both engines and compare records.
fn assert_paths_agree(app: &AppSpec, client_idx: usize, slice: &[InjectionTarget]) {
    let spec = &app.clients[client_idx];
    let golden = golden_run(&app.image, spec).unwrap();
    for scheme in [EncodingScheme::Baseline, EncodingScheme::NewEncoding] {
        for group in by_addr(slice) {
            let fast = run_injection_group(&app.image, spec, &golden, group, scheme).unwrap();
            let slow: Vec<_> = group
                .iter()
                .map(|t| run_injection(&app.image, spec, &golden, t, scheme).unwrap())
                .collect();
            assert_eq!(
                fast, slow,
                "{} {} {:?} group at {:#010x} diverged between engines",
                app.name, spec.name, scheme, group[0].addr
            );
        }
    }
}

#[test]
fn ftpd_pass_slice_agrees_between_engines() {
    let app = AppSpec::ftpd();
    let set = enumerate_targets(&app.image, &["pass"], true);
    // Every bit of the first four pass() branch instructions: activated
    // runs with BRK/SD/FSV/NM mixes under Client1 (attack).
    let slice: Vec<_> = set.targets.iter().take(4 * 48).copied().collect();
    assert!(slice.len() >= 96, "expected several instructions' worth");
    assert_paths_agree(&app, 0, &slice);
}

#[test]
fn ftpd_granted_client_slice_agrees_between_engines() {
    // Client2 (correct password): golden grants, so the engines must
    // also agree on the no-BRK side of the classification.
    let app = AppSpec::ftpd();
    let set = enumerate_targets(&app.image, &["pass"], true);
    let slice: Vec<_> = set.targets.iter().take(2 * 48).copied().collect();
    assert_paths_agree(&app, 1, &slice);
}

#[test]
fn sshd_auth_password_slice_agrees_between_engines() {
    let app = AppSpec::sshd();
    let set = enumerate_targets(&app.image, &["auth_password"], true);
    let slice: Vec<_> = set.targets.iter().take(3 * 48).copied().collect();
    assert!(!slice.is_empty());
    assert_paths_agree(&app, 0, &slice);
}

/// Run a target slice through the group replayer with the block engine
/// on and off — golden runs included — and require field-for-field
/// identical `InjectionRun` records under both encodings.
fn assert_block_modes_agree(app: &AppSpec, client_idx: usize, slice: &[InjectionTarget]) {
    let spec = &app.clients[client_idx];
    let blk = EngineOpts {
        block_cache: true,
        ..EngineOpts::default()
    };
    let stp = EngineOpts {
        block_cache: false,
        ..EngineOpts::default()
    };
    let golden_blk = golden_run_opts(&app.image, spec, blk).unwrap();
    let golden_stp = golden_run_opts(&app.image, spec, stp).unwrap();
    assert_eq!(
        golden_blk, golden_stp,
        "{} {} golden runs diverged between block and step engines",
        app.name, spec.name
    );
    for scheme in [EncodingScheme::Baseline, EncodingScheme::NewEncoding] {
        for group in by_addr(slice) {
            let fast =
                run_injection_group_metered_opts(&app.image, spec, &golden_blk, group, scheme, blk)
                    .unwrap();
            let slow =
                run_injection_group_metered_opts(&app.image, spec, &golden_stp, group, scheme, stp)
                    .unwrap();
            let fast: Vec<_> = fast.0.into_iter().map(|(run, _)| run).collect();
            let slow: Vec<_> = slow.0.into_iter().map(|(run, _)| run).collect();
            assert_eq!(
                fast, slow,
                "{} {} {:?} group at {:#010x} diverged between block and step engines",
                app.name, spec.name, scheme, group[0].addr
            );
        }
    }
}

#[test]
fn ftpd_block_engine_agrees_with_step_engine() {
    let app = AppSpec::ftpd();
    let set = enumerate_targets(&app.image, &["pass"], true);
    let slice: Vec<_> = set.targets.iter().take(3 * 48).copied().collect();
    assert!(slice.len() >= 96);
    assert_block_modes_agree(&app, 0, &slice);
}

#[test]
fn sshd_block_engine_agrees_with_step_engine() {
    let app = AppSpec::sshd();
    let set = enumerate_targets(&app.image, &["auth_password"], true);
    let slice: Vec<_> = set.targets.iter().take(2 * 48).copied().collect();
    assert!(!slice.is_empty());
    assert_block_modes_agree(&app, 0, &slice);
}

/// Run a target slice with the tier-2 trace cache on and off — golden
/// runs included — and require field-for-field identical
/// `InjectionRun` records under both encodings. The trace cache is the
/// superblock layer on top of tier 1, so this pins the tentpole's
/// bit-identity promise at the injection-run level.
fn assert_trace_modes_agree(app: &AppSpec, client_idx: usize, slice: &[InjectionTarget]) {
    let spec = &app.clients[client_idx];
    let tier2 = EngineOpts {
        trace_cache: true,
        ..EngineOpts::default()
    };
    let tier1 = EngineOpts {
        trace_cache: false,
        ..EngineOpts::default()
    };
    let golden_t2 = golden_run_opts(&app.image, spec, tier2).unwrap();
    let golden_t1 = golden_run_opts(&app.image, spec, tier1).unwrap();
    assert_eq!(
        golden_t2, golden_t1,
        "{} {} golden runs diverged between tier-2 and tier-1 engines",
        app.name, spec.name
    );
    for scheme in [EncodingScheme::Baseline, EncodingScheme::NewEncoding] {
        for group in by_addr(slice) {
            let fast = run_injection_group_metered_opts(
                &app.image, spec, &golden_t2, group, scheme, tier2,
            )
            .unwrap();
            let slow = run_injection_group_metered_opts(
                &app.image, spec, &golden_t1, group, scheme, tier1,
            )
            .unwrap();
            let fast: Vec<_> = fast.0.into_iter().map(|(run, _)| run).collect();
            let slow: Vec<_> = slow.0.into_iter().map(|(run, _)| run).collect();
            assert_eq!(
                fast, slow,
                "{} {} {:?} group at {:#010x} diverged between tier-2 and tier-1",
                app.name, spec.name, scheme, group[0].addr
            );
        }
    }
}

#[test]
fn ftpd_trace_cache_agrees_with_tier1() {
    let app = AppSpec::ftpd();
    let set = enumerate_targets(&app.image, &["pass"], true);
    let slice: Vec<_> = set.targets.iter().take(3 * 48).copied().collect();
    assert!(slice.len() >= 96);
    assert_trace_modes_agree(&app, 0, &slice);
}

#[test]
fn sshd_trace_cache_agrees_with_tier1() {
    let app = AppSpec::sshd();
    let set = enumerate_targets(&app.image, &["auth_password"], true);
    let slice: Vec<_> = set.targets.iter().take(2 * 48).copied().collect();
    assert!(!slice.is_empty());
    assert_trace_modes_agree(&app, 0, &slice);
}

/// The flight recorder must be a pure observer: recorder-on runs
/// produce field-for-field identical `InjectionRun`s, and the recorded
/// traces themselves are identical between the block and step engines.
#[test]
fn flight_recorder_is_a_pure_observer_and_engine_independent() {
    let app = AppSpec::ftpd();
    let spec = &app.clients[0];
    let golden = golden_run(&app.image, spec).unwrap();
    let set = enumerate_targets(&app.image, &["pass"], true);
    let slice: Vec<_> = set.targets.iter().take(2 * 48).copied().collect();
    let plain = EngineOpts::default();
    let recorded = EngineOpts {
        flight_recorder: true,
        ..EngineOpts::default()
    };
    let recorded_stp = EngineOpts {
        block_cache: false,
        flight_recorder: true,
        ..EngineOpts::default()
    };
    for group in by_addr(&slice) {
        let off = run_injection_group_metered_opts(
            &app.image,
            spec,
            &golden,
            group,
            EncodingScheme::Baseline,
            plain,
        )
        .unwrap();
        let on = fisec_inject::run_injection_group_recorded(
            &app.image,
            spec,
            &golden,
            group,
            EncodingScheme::Baseline,
            recorded,
        )
        .unwrap();
        let on_stp = fisec_inject::run_injection_group_recorded(
            &app.image,
            spec,
            &golden,
            group,
            EncodingScheme::Baseline,
            recorded_stp,
        )
        .unwrap();
        let off_runs: Vec<_> = off.0.into_iter().map(|(run, _)| run).collect();
        let on_runs: Vec<_> = on.0.iter().map(|(run, _, _, _)| run.clone()).collect();
        assert_eq!(
            off_runs, on_runs,
            "recorder changed outcomes at {:#010x}",
            group[0].addr
        );
        // Every activated run carries a report, and the recorded control
        // flow is engine-independent.
        for ((run, _, rep, _), (_, _, rep_stp, _)) in on.0.iter().zip(&on_stp.0) {
            assert_eq!(run.activated, rep.is_some());
            if let (Some(a), Some(b)) = (rep, rep_stp) {
                assert_eq!(a.faulty, b.faulty, "faulty trace diverged between engines");
                assert_eq!(
                    a.golden.as_ref(),
                    b.golden.as_ref(),
                    "golden continuation diverged between engines"
                );
                assert_eq!(a.first_divergence, b.first_divergence);
                assert_eq!(a.divergence_depth, b.divergence_depth);
                // A crashed run's trace-derived latency equals the live
                // Figure 4 measurement by construction.
                if let Some(lat) = run.crash_latency {
                    assert_eq!(a.faulty.retired(), lat);
                }
            }
        }
    }
}

/// The hot-spot profiler must also be a pure observer: profiler-on runs
/// produce field-for-field identical `InjectionRun`s in both execution
/// modes, and the profile itself accounts for every retired instruction.
#[test]
fn profiler_is_a_pure_observer_in_both_engines() {
    let app = AppSpec::ftpd();
    let spec = &app.clients[0];
    let golden = golden_run(&app.image, spec).unwrap();
    let set = enumerate_targets(&app.image, &["pass"], true);
    let slice: Vec<_> = set.targets.iter().take(2 * 48).copied().collect();
    for block_cache in [true, false] {
        let plain = EngineOpts {
            block_cache,
            ..EngineOpts::default()
        };
        let profiled = EngineOpts {
            block_cache,
            profiler: true,
            ..EngineOpts::default()
        };
        for group in by_addr(&slice) {
            let off = run_injection_group_metered_opts(
                &app.image,
                spec,
                &golden,
                group,
                EncodingScheme::Baseline,
                plain,
            )
            .unwrap();
            let (on_runs, on_group, profile, _) = fisec_inject::run_injection_group_recorded(
                &app.image,
                spec,
                &golden,
                group,
                EncodingScheme::Baseline,
                profiled,
            )
            .unwrap();
            let off_runs: Vec<_> = off.0.into_iter().map(|(run, _)| run).collect();
            let on_runs: Vec<_> = on_runs.into_iter().map(|(run, _, _, _)| run).collect();
            assert_eq!(
                off_runs, on_runs,
                "profiler changed outcomes at {:#010x} (block_cache={block_cache})",
                group[0].addr
            );
            assert_eq!(off.1.activated, on_group.activated);
            let profile = profile.expect("profiler was requested");
            assert!(
                profile.total_retired() > 0,
                "an activated group retires instructions"
            );
            if !block_cache {
                assert!(
                    profile.blocks.is_empty(),
                    "step engine never dispatches blocks"
                );
            }
        }
    }
}

#[test]
fn unreached_group_is_na_in_both_engines() {
    // Client1 is denied and never drives retr(); a whole group there
    // must come back NotActivated from both engines, with identical
    // stop/client fields.
    let app = AppSpec::ftpd();
    let spec = &app.clients[0];
    let golden = golden_run(&app.image, spec).unwrap();
    let set = enumerate_targets(&app.image, &["retr"], true);
    let group = by_addr(&set.targets)[0];
    let fast =
        run_injection_group(&app.image, spec, &golden, group, EncodingScheme::Baseline).unwrap();
    assert!(fast.iter().all(|r| r.outcome == OutcomeClass::NotActivated));
    let slow: Vec<_> = group
        .iter()
        .map(|t| run_injection(&app.image, spec, &golden, t, EncodingScheme::Baseline).unwrap())
        .collect();
    assert_eq!(fast, slow);
}

#[test]
fn empty_group_is_empty() {
    let app = AppSpec::ftpd();
    let spec = &app.clients[0];
    let golden = golden_run(&app.image, spec).unwrap();
    let runs =
        run_injection_group(&app.image, spec, &golden, &[], EncodingScheme::Baseline).unwrap();
    assert!(runs.is_empty());
}
