//! Instruction model: operations, operands, conditions, faults.
//!
//! The model is deliberately uniform: one [`Inst`] struct with up to three
//! [`Operand`]s plus an operand size. The decoder produces these and the
//! interpreter consumes them; the encoder accepts the subset needed by the
//! assembler.

use std::fmt;

/// A 32-bit general-purpose register, in IA-32 encoding order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[repr(u8)]
pub enum Reg32 {
    /// Accumulator.
    Eax = 0,
    /// Counter.
    Ecx = 1,
    /// Data.
    Edx = 2,
    /// Base.
    Ebx = 3,
    /// Stack pointer.
    Esp = 4,
    /// Frame pointer.
    Ebp = 5,
    /// Source index.
    Esi = 6,
    /// Destination index.
    Edi = 7,
}

impl Reg32 {
    /// All eight registers in encoding order.
    pub const ALL: [Reg32; 8] = [
        Reg32::Eax,
        Reg32::Ecx,
        Reg32::Edx,
        Reg32::Ebx,
        Reg32::Esp,
        Reg32::Ebp,
        Reg32::Esi,
        Reg32::Edi,
    ];

    /// Register for an encoding number (0..=7).
    ///
    /// # Panics
    /// Panics if `n > 7`.
    pub fn from_num(n: u8) -> Reg32 {
        Self::ALL[n as usize]
    }

    /// Short AT&T-style name (without the `%`).
    pub fn name(self) -> &'static str {
        ["eax", "ecx", "edx", "ebx", "esp", "ebp", "esi", "edi"][self as usize]
    }
}

impl fmt::Display for Reg32 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A 16-bit register (low halves of the 32-bit registers).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum Reg16 {
    /// Low 16 bits of EAX.
    Ax = 0,
    /// Low 16 bits of ECX.
    Cx = 1,
    /// Low 16 bits of EDX.
    Dx = 2,
    /// Low 16 bits of EBX.
    Bx = 3,
    /// Low 16 bits of ESP.
    Sp = 4,
    /// Low 16 bits of EBP.
    Bp = 5,
    /// Low 16 bits of ESI.
    Si = 6,
    /// Low 16 bits of EDI.
    Di = 7,
}

impl Reg16 {
    /// Register for an encoding number (0..=7).
    ///
    /// # Panics
    /// Panics if `n > 7`.
    pub fn from_num(n: u8) -> Reg16 {
        [
            Reg16::Ax,
            Reg16::Cx,
            Reg16::Dx,
            Reg16::Bx,
            Reg16::Sp,
            Reg16::Bp,
            Reg16::Si,
            Reg16::Di,
        ][n as usize]
    }

    /// Short name.
    pub fn name(self) -> &'static str {
        ["ax", "cx", "dx", "bx", "sp", "bp", "si", "di"][self as usize]
    }
}

impl fmt::Display for Reg16 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// An 8-bit register. `Al..Bl` are the low bytes of EAX..EBX; `Ah..Bh` the
/// second bytes, matching IA-32 encoding numbers 0..=7.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum Reg8 {
    /// Low byte of EAX.
    Al = 0,
    /// Low byte of ECX.
    Cl = 1,
    /// Low byte of EDX.
    Dl = 2,
    /// Low byte of EBX.
    Bl = 3,
    /// Second byte of EAX.
    Ah = 4,
    /// Second byte of ECX.
    Ch = 5,
    /// Second byte of EDX.
    Dh = 6,
    /// Second byte of EBX.
    Bh = 7,
}

impl Reg8 {
    /// Register for an encoding number (0..=7).
    ///
    /// # Panics
    /// Panics if `n > 7`.
    pub fn from_num(n: u8) -> Reg8 {
        [
            Reg8::Al,
            Reg8::Cl,
            Reg8::Dl,
            Reg8::Bl,
            Reg8::Ah,
            Reg8::Ch,
            Reg8::Dh,
            Reg8::Bh,
        ][n as usize]
    }

    /// Short name.
    pub fn name(self) -> &'static str {
        ["al", "cl", "dl", "bl", "ah", "ch", "dh", "bh"][self as usize]
    }
}

impl fmt::Display for Reg8 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Operand size of an operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OpSize {
    /// 8-bit.
    Byte,
    /// 16-bit (operand-size prefix).
    Word,
    /// 32-bit (default in our flat model).
    Dword,
}

impl OpSize {
    /// Size in bytes.
    pub fn bytes(self) -> u32 {
        match self {
            OpSize::Byte => 1,
            OpSize::Word => 2,
            OpSize::Dword => 4,
        }
    }

    /// Mask of the low `bytes()*8` bits.
    pub fn mask(self) -> u32 {
        match self {
            OpSize::Byte => 0xFF,
            OpSize::Word => 0xFFFF,
            OpSize::Dword => 0xFFFF_FFFF,
        }
    }

    /// Position of the sign bit.
    pub fn sign_bit(self) -> u32 {
        match self {
            OpSize::Byte => 0x80,
            OpSize::Word => 0x8000,
            OpSize::Dword => 0x8000_0000,
        }
    }
}

/// A memory operand computed as `base + index*scale + disp` in the flat
/// address space (segment overrides are decoded but have no effect).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct MemOperand {
    /// Base register, if any.
    pub base: Option<Reg32>,
    /// Index register (never ESP) and scale (1, 2, 4 or 8), if any.
    pub index: Option<(Reg32, u8)>,
    /// Signed displacement.
    pub disp: i32,
}

impl MemOperand {
    /// Absolute-address operand (`[disp]`).
    pub fn abs(addr: u32) -> MemOperand {
        MemOperand {
            base: None,
            index: None,
            disp: addr as i32,
        }
    }

    /// Base-plus-displacement operand (`[reg + disp]`).
    pub fn base_disp(base: Reg32, disp: i32) -> MemOperand {
        MemOperand {
            base: Some(base),
            index: None,
            disp,
        }
    }
}

impl fmt::Display for MemOperand {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        let mut wrote = false;
        if let Some(b) = self.base {
            write!(f, "{b}")?;
            wrote = true;
        }
        if let Some((i, s)) = self.index {
            if wrote {
                write!(f, "+")?;
            }
            write!(f, "{i}*{s}")?;
            wrote = true;
        }
        if self.disp != 0 || !wrote {
            if wrote {
                if self.disp < 0 {
                    write!(f, "-{:#x}", (self.disp as i64).unsigned_abs())?;
                } else {
                    write!(f, "+{:#x}", self.disp)?;
                }
            } else {
                write!(f, "{:#x}", self.disp as u32)?;
            }
        }
        write!(f, "]")
    }
}

/// An instruction operand.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Operand {
    /// 32-bit register.
    Reg(Reg32),
    /// 16-bit register.
    Reg16(Reg16),
    /// 8-bit register.
    Reg8(Reg8),
    /// Memory reference; access width comes from the instruction's `size`.
    Mem(MemOperand),
    /// Immediate (sign-extended to 64 bits so that both signed and unsigned
    /// 32-bit immediates are representable without loss).
    Imm(i64),
    /// Branch displacement relative to the end of the instruction.
    Rel(i32),
}

impl fmt::Display for Operand {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Operand::Reg(r) => write!(f, "%{r}"),
            Operand::Reg16(r) => write!(f, "%{r}"),
            Operand::Reg8(r) => write!(f, "%{r}"),
            Operand::Mem(m) => write!(f, "{m}"),
            Operand::Imm(i) => write!(f, "${i:#x}"),
            Operand::Rel(d) => write!(f, ".{d:+}"),
        }
    }
}

/// Condition codes in IA-32 encoding order (the low nibble of `Jcc`/`SETcc`
/// opcodes). `Cond::E as u8 == 0x4`, so `0x74` is `JE`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum Cond {
    /// Overflow.
    O = 0x0,
    /// Not overflow.
    No = 0x1,
    /// Below (unsigned <), aka carry.
    B = 0x2,
    /// Not below (unsigned >=), aka not carry.
    Nb = 0x3,
    /// Equal / zero.
    E = 0x4,
    /// Not equal / not zero.
    Ne = 0x5,
    /// Below or equal (unsigned <=), aka not above.
    Be = 0x6,
    /// Above (unsigned >).
    A = 0x7,
    /// Sign (negative).
    S = 0x8,
    /// Not sign.
    Ns = 0x9,
    /// Parity even.
    P = 0xA,
    /// Parity odd.
    Np = 0xB,
    /// Less (signed <).
    L = 0xC,
    /// Greater or equal (signed >=).
    Ge = 0xD,
    /// Less or equal (signed <=).
    Le = 0xE,
    /// Greater (signed >).
    G = 0xF,
}

impl Cond {
    /// All sixteen conditions in encoding order.
    pub const ALL: [Cond; 16] = [
        Cond::O,
        Cond::No,
        Cond::B,
        Cond::Nb,
        Cond::E,
        Cond::Ne,
        Cond::Be,
        Cond::A,
        Cond::S,
        Cond::Ns,
        Cond::P,
        Cond::Np,
        Cond::L,
        Cond::Ge,
        Cond::Le,
        Cond::G,
    ];

    /// Condition for the low nibble of a `Jcc` opcode.
    ///
    /// # Panics
    /// Panics if `n > 0xF`.
    pub fn from_nibble(n: u8) -> Cond {
        Self::ALL[n as usize]
    }

    /// Mnemonic suffix ("e", "ne", ...).
    pub fn suffix(self) -> &'static str {
        [
            "o", "no", "b", "nb", "e", "ne", "be", "a", "s", "ns", "p", "np", "l", "ge", "le", "g",
        ][self as usize]
    }
}

impl fmt::Display for Cond {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.suffix())
    }
}

/// Why a byte sequence failed to decode into a real instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum InvalidKind {
    /// Undefined opcode (`#UD`-class).
    Undefined,
    /// A real IA-32 instruction that is privileged or unsupported in our
    /// user-mode flat model (`hlt`, `in`/`out`, far control transfers,
    /// segment register writes, `iret`, ...). Faults like `#GP` on Linux.
    Privileged,
    /// The instruction ran past the readable bytes (fetch crossed into
    /// unmapped memory).
    Truncated,
    /// More than 15 bytes of prefixes+opcode.
    TooLong,
}

/// String-instruction family selector.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StrOp {
    /// `movs` — copy \[ESI\] to \[EDI\].
    Movs,
    /// `stos` — store AL/AX/EAX to \[EDI\].
    Stos,
    /// `lods` — load AL/AX/EAX from \[ESI\].
    Lods,
    /// `scas` — compare AL/AX/EAX with \[EDI\].
    Scas,
    /// `cmps` — compare \[ESI\] with \[EDI\].
    Cmps,
}

/// REP prefix kind attached to a string instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RepKind {
    /// `rep` / `repe` (0xF3).
    RepE,
    /// `repne` (0xF2).
    RepNe,
}

/// Operations understood by the interpreter.
///
/// Binary ALU operations take `dst, src`; unary take `dst`. Shifts take
/// `dst, count`. `Imul3` takes `dst, src, imm`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Op {
    /// Integer add.
    Add,
    /// Bitwise or.
    Or,
    /// Add with carry.
    Adc,
    /// Subtract with borrow.
    Sbb,
    /// Bitwise and.
    And,
    /// Integer subtract.
    Sub,
    /// Bitwise exclusive or.
    Xor,
    /// Compare (subtract, flags only).
    Cmp,
    /// Logical compare (and, flags only).
    Test,
    /// Move.
    Mov,
    /// Move with zero extension (src is 8- or 16-bit, per `size2`).
    Movzx,
    /// Move with sign extension.
    Movsx,
    /// Load effective address.
    Lea,
    /// Exchange.
    Xchg,
    /// Push onto the stack.
    Push,
    /// Pop from the stack.
    Pop,
    /// Increment.
    Inc,
    /// Decrement.
    Dec,
    /// Two's-complement negate.
    Neg,
    /// One's-complement.
    Not,
    /// Unsigned multiply into EDX:EAX.
    Mul,
    /// Signed multiply into EDX:EAX (one-operand form).
    Imul1,
    /// Signed multiply, two-operand (`imul r, r/m`).
    Imul2,
    /// Signed multiply, three-operand (`imul r, r/m, imm`).
    Imul3,
    /// Unsigned divide EDX:EAX by operand.
    Div,
    /// Signed divide EDX:EAX by operand.
    Idiv,
    /// Shift left.
    Shl,
    /// Logical shift right.
    Shr,
    /// Arithmetic shift right.
    Sar,
    /// Rotate left.
    Rol,
    /// Rotate right.
    Ror,
    /// Rotate left through carry.
    Rcl,
    /// Rotate right through carry.
    Rcr,
    /// Conditional branch.
    Jcc(Cond),
    /// Set byte on condition.
    Setcc(Cond),
    /// Unconditional relative jump.
    Jmp,
    /// Indirect jump through r/m.
    JmpInd,
    /// Relative call.
    Call,
    /// Indirect call through r/m.
    CallInd,
    /// Near return, popping `imm` extra bytes.
    Ret(u16),
    /// `leave` (mov esp,ebp; pop ebp).
    Leave,
    /// `enter imm16, imm8` (we support nesting level 0 only; other levels
    /// fault as unsupported).
    Enter(u16, u8),
    /// No operation.
    Nop,
    /// Software interrupt `int imm8`.
    Int(u8),
    /// Breakpoint trap (0xCC).
    Int3,
    /// `into` — interrupt on overflow.
    Into,
    /// Push EFLAGS.
    Pushf,
    /// Pop EFLAGS.
    Popf,
    /// Store AH into flags.
    Sahf,
    /// Load flags into AH.
    Lahf,
    /// Sign-extend AL into AX (`cbw`) or AX into EAX (`cwde`), per size.
    Cwde,
    /// Sign-extend EAX into EDX:EAX (`cdq`) or AX into DX:AX (`cwd`).
    Cdq,
    /// Push all eight GPRs.
    Pusha,
    /// Pop all eight GPRs (ESP value discarded).
    Popa,
    /// Clear carry.
    Clc,
    /// Set carry.
    Stc,
    /// Complement carry.
    Cmc,
    /// Clear direction.
    Cld,
    /// Set direction.
    Std,
    /// `loop` — dec ECX, branch if nonzero.
    Loop,
    /// `loope` — dec ECX, branch if nonzero and ZF.
    Loope,
    /// `loopne` — dec ECX, branch if nonzero and !ZF.
    Loopne,
    /// `jecxz` — branch if ECX is zero.
    Jecxz,
    /// String operation with optional REP prefix.
    Str(StrOp),
    /// `xlat` — AL = \[EBX + AL\].
    Xlat,
    /// `bound r, m` — fault if register outside bounds pair.
    Bound,
    /// ASCII-adjust family (`aaa`, `aas`, `daa`, `das`, `aam`, `aad`). We
    /// implement them with correct AL/AH semantics since flipped bits can
    /// produce them in integer code.
    Aaa,
    /// See [`Op::Aaa`].
    Aas,
    /// See [`Op::Aaa`].
    Daa,
    /// See [`Op::Aaa`].
    Das,
    /// `aam imm8` — divides AL by imm; imm 0 faults (#DE).
    Aam(u8),
    /// `aad imm8`.
    Aad(u8),
    /// `salc` — undocumented: AL = CF ? 0xFF : 0.
    Salc,
    /// Bit test (`bt r/m, r` or `bt r/m, imm8`): CF = selected bit.
    Bt,
    /// Bit test and set.
    Bts,
    /// Bit test and reset.
    Btr,
    /// Bit test and complement.
    Btc,
    /// Double-precision shift left (`shld dst, src, count`).
    Shld,
    /// Double-precision shift right.
    Shrd,
    /// Exchange and add (`xadd r/m, r`).
    Xadd,
    /// Byte-swap a 32-bit register.
    Bswap,
    /// Compare and exchange (`cmpxchg r/m, r`).
    Cmpxchg,
    /// `arpl r/m16, r16` — adjust RPL; we model it as "ZF := 0" only (flat
    /// protection model; documented simplification).
    Arpl,
    /// x87 floating-point instruction: decoded with correct length, executed
    /// as an architectural no-op for integer state (see DESIGN.md).
    Fpu,
    /// `cpuid` — sets EAX..EDX to fixed identification values.
    Cpuid,
    /// `rdtsc` — returns the current instruction count (deterministic).
    Rdtsc,
    /// `wait`/`fwait` — no-op.
    Fwait,
    /// Not a valid/executable instruction; faults when executed.
    Invalid(InvalidKind),
}

/// Faults raised by the interpreter, mapped onto the POSIX signals the
/// paper's injector observed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Fault {
    /// Invalid or undefined opcode — `SIGILL`.
    InvalidOpcode(u32),
    /// Privileged/unsupported instruction in user mode — `SIGSEGV` (Linux
    /// delivers `#GP` as SIGSEGV).
    GeneralProtection(u32),
    /// Data access to unmapped or protection-violating memory — `SIGSEGV`.
    MemAccess {
        /// Faulting data address.
        addr: u32,
        /// True for writes.
        write: bool,
    },
    /// Instruction fetch from unmapped or non-executable memory — `SIGSEGV`.
    FetchFault(u32),
    /// Integer divide error (`div`/`idiv`/`aam 0`) — `SIGFPE`.
    DivideError(u32),
    /// `int3`/`into`/`bound`/unknown `int n` executed without a handler —
    /// `SIGTRAP`-class.
    Trap(u32),
}

impl Fault {
    /// Name of the POSIX signal this fault corresponds to under Linux.
    pub fn signal_name(self) -> &'static str {
        match self {
            Fault::InvalidOpcode(_) => "SIGILL",
            Fault::GeneralProtection(_) | Fault::MemAccess { .. } | Fault::FetchFault(_) => {
                "SIGSEGV"
            }
            Fault::DivideError(_) => "SIGFPE",
            Fault::Trap(_) => "SIGTRAP",
        }
    }

    /// EIP (or faulting address) associated with the fault.
    pub fn addr(self) -> u32 {
        match self {
            Fault::InvalidOpcode(a)
            | Fault::GeneralProtection(a)
            | Fault::FetchFault(a)
            | Fault::DivideError(a)
            | Fault::Trap(a) => a,
            Fault::MemAccess { addr, .. } => addr,
        }
    }
}

impl fmt::Display for Fault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Fault::InvalidOpcode(a) => write!(f, "invalid opcode at {a:#010x}"),
            Fault::GeneralProtection(a) => write!(f, "general protection fault at {a:#010x}"),
            Fault::MemAccess { addr, write } => write!(
                f,
                "invalid memory {} at {addr:#010x}",
                if *write { "write" } else { "read" }
            ),
            Fault::FetchFault(a) => write!(f, "instruction fetch fault at {a:#010x}"),
            Fault::DivideError(a) => write!(f, "divide error at {a:#010x}"),
            Fault::Trap(a) => write!(f, "trap at {a:#010x}"),
        }
    }
}

impl std::error::Error for Fault {}

/// A decoded instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Inst {
    /// Operation.
    pub op: Op,
    /// Destination / first operand.
    pub dst: Option<Operand>,
    /// Source / second operand.
    pub src: Option<Operand>,
    /// Third operand (`imul r, r/m, imm`).
    pub src2: Option<Operand>,
    /// Operation width.
    pub size: OpSize,
    /// Source width for `movzx`/`movsx` (the narrower one).
    pub size2: OpSize,
    /// REP prefix on string instructions.
    pub rep: Option<RepKind>,
    /// Encoded length in bytes (1..=15).
    pub len: u8,
}

impl Inst {
    /// A bare instruction of the given op with no operands, dword size,
    /// length 1. Builder-style helpers fill the rest.
    pub fn new(op: Op) -> Inst {
        Inst {
            op,
            dst: None,
            src: None,
            src2: None,
            size: OpSize::Dword,
            size2: OpSize::Dword,
            rep: None,
            len: 1,
        }
    }

    /// Set the destination operand.
    pub fn dst(mut self, o: Operand) -> Inst {
        self.dst = Some(o);
        self
    }

    /// Set the source operand.
    pub fn src(mut self, o: Operand) -> Inst {
        self.src = Some(o);
        self
    }

    /// Set the operand size.
    pub fn size(mut self, s: OpSize) -> Inst {
        self.size = s;
        self
    }

    /// Set the encoded length.
    pub fn len(mut self, l: u8) -> Inst {
        self.len = l;
        self
    }

    /// True if this is a control-transfer instruction (conditional branch,
    /// jump, call, return, loop) — the injection target set of the study.
    pub fn is_control_transfer(&self) -> bool {
        matches!(
            self.op,
            Op::Jcc(_)
                | Op::Jmp
                | Op::JmpInd
                | Op::Call
                | Op::CallInd
                | Op::Ret(_)
                | Op::Loop
                | Op::Loope
                | Op::Loopne
                | Op::Jecxz
        )
    }

    /// True if this is a conditional branch.
    pub fn is_cond_branch(&self) -> bool {
        matches!(self.op, Op::Jcc(_))
    }

    /// True for branch instructions in the study's sense: conditional
    /// branches, unconditional jumps and loop instructions — but not
    /// calls or returns (the paper's Table 3 MISC rows are far too small
    /// for calls to have been included).
    pub fn is_branch(&self) -> bool {
        matches!(
            self.op,
            Op::Jcc(_) | Op::Jmp | Op::JmpInd | Op::Loop | Op::Loope | Op::Loopne | Op::Jecxz
        )
    }
}

impl fmt::Display for Inst {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.op {
            Op::Jcc(c) => write!(f, "j{c}")?,
            Op::Setcc(c) => write!(f, "set{c}")?,
            Op::Str(s) => {
                if let Some(r) = self.rep {
                    write!(
                        f,
                        "{} ",
                        match r {
                            RepKind::RepE => "rep",
                            RepKind::RepNe => "repne",
                        }
                    )?;
                }
                write!(f, "{s:?}")?;
            }
            Op::Int(n) => write!(f, "int {n:#x}")?,
            Op::Ret(0) => write!(f, "ret")?,
            Op::Ret(n) => write!(f, "ret {n:#x}")?,
            ref op => write!(f, "{op:?}")?,
        }
        if let Some(d) = self.dst {
            write!(f, " {d}")?;
        }
        if let Some(s) = self.src {
            write!(f, ", {s}")?;
        }
        if let Some(s2) = self.src2 {
            write!(f, ", {s2}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cond_nibble_roundtrip() {
        for (i, c) in Cond::ALL.iter().enumerate() {
            assert_eq!(*c as u8, i as u8);
            assert_eq!(Cond::from_nibble(i as u8), *c);
        }
    }

    #[test]
    fn je_is_0x74_by_convention() {
        assert_eq!(0x70u8 | Cond::E as u8, 0x74);
        assert_eq!(0x70u8 | Cond::Ne as u8, 0x75);
    }

    #[test]
    fn opsize_masks() {
        assert_eq!(OpSize::Byte.mask(), 0xFF);
        assert_eq!(OpSize::Word.mask(), 0xFFFF);
        assert_eq!(OpSize::Dword.mask(), 0xFFFF_FFFF);
        assert_eq!(OpSize::Byte.sign_bit(), 0x80);
        assert_eq!(OpSize::Dword.bytes(), 4);
    }

    #[test]
    fn fault_signals() {
        assert_eq!(Fault::InvalidOpcode(0).signal_name(), "SIGILL");
        assert_eq!(
            Fault::MemAccess {
                addr: 0,
                write: true
            }
            .signal_name(),
            "SIGSEGV"
        );
        assert_eq!(Fault::DivideError(0).signal_name(), "SIGFPE");
        assert_eq!(Fault::Trap(4).addr(), 4);
    }

    #[test]
    fn display_smoke() {
        let i = Inst::new(Op::Mov)
            .dst(Operand::Reg(Reg32::Eax))
            .src(Operand::Imm(7));
        assert_eq!(format!("{i}"), "Mov %eax, $0x7");
        let j = Inst::new(Op::Jcc(Cond::E)).dst(Operand::Rel(5));
        assert_eq!(format!("{j}"), "je .+5");
        let m = MemOperand {
            base: Some(Reg32::Ebp),
            index: None,
            disp: -8,
        };
        assert_eq!(format!("{m}"), "[ebp-0x8]");
    }

    #[test]
    fn control_transfer_predicate() {
        assert!(Inst::new(Op::Jcc(Cond::E)).is_control_transfer());
        assert!(Inst::new(Op::Jmp).is_control_transfer());
        assert!(Inst::new(Op::Call).is_control_transfer());
        assert!(Inst::new(Op::Ret(0)).is_control_transfer());
        assert!(!Inst::new(Op::Mov).is_control_transfer());
        assert!(Inst::new(Op::Jcc(Cond::E)).is_cond_branch());
        assert!(!Inst::new(Op::Jmp).is_cond_branch());
    }
}
