//! Deterministic test execution: per-test RNG, configuration, and the
//! case loop behind the `proptest!` macro.

/// Per-test pseudo-random source (xoshiro256**, seeded from the test
/// name and case index — every run generates the same cases).
#[derive(Debug, Clone)]
pub struct TestRng {
    s: [u64; 4],
}

impl TestRng {
    /// RNG for case `index` of the test named `name`.
    pub fn deterministic(name: &str, index: u64) -> TestRng {
        // FNV-1a over the name, mixed with the case index, expanded by
        // SplitMix64.
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        let mut sm = h ^ index.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        let mut next = || {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        TestRng {
            s: [next(), next(), next(), next()],
        }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform draw below `n` (which must be nonzero).
    pub fn u64_below(&mut self, n: u64) -> u64 {
        (((self.next_u64() as u128).wrapping_mul(n as u128)) >> 64) as u64
    }
}

/// How a property test case can fail.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TestCaseError {
    /// The property did not hold.
    Fail(String),
    /// The inputs were rejected (e.g. by an assumption); the case is
    /// retried with fresh inputs.
    Reject(String),
}

impl TestCaseError {
    /// A failed property.
    pub fn fail(msg: impl Into<String>) -> TestCaseError {
        TestCaseError::Fail(msg.into())
    }

    /// A rejected set of inputs.
    pub fn reject(msg: impl Into<String>) -> TestCaseError {
        TestCaseError::Reject(msg.into())
    }
}

/// Property-test configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of successful cases required.
    pub cases: u32,
    /// Upper bound on rejected cases across the whole run.
    pub max_global_rejects: u32,
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig {
            cases: 256,
            max_global_rejects: 65_536,
        }
    }
}

impl ProptestConfig {
    /// Default configuration with a specific case count.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig {
            cases,
            ..ProptestConfig::default()
        }
    }
}

/// Drive one property test: `f` generates inputs from the RNG it is
/// given and runs the body, returning the inputs' debug rendering and
/// the body's verdict.
///
/// # Panics
/// Panics (failing the enclosing `#[test]`) on the first failing case,
/// with the generated inputs in the message.
pub fn run_proptest<F>(config: ProptestConfig, name: &str, mut f: F)
where
    F: FnMut(&mut TestRng) -> (String, Result<(), TestCaseError>),
{
    let mut rejects = 0u32;
    let mut case = 0u32;
    let mut seed_index = 0u64;
    while case < config.cases {
        let mut rng = TestRng::deterministic(name, seed_index);
        seed_index += 1;
        let (inputs, result) = f(&mut rng);
        match result {
            Ok(()) => case += 1,
            Err(TestCaseError::Reject(reason)) => {
                rejects += 1;
                assert!(
                    rejects <= config.max_global_rejects,
                    "proptest {name}: too many rejected cases ({rejects}), last: {reason}"
                );
            }
            Err(TestCaseError::Fail(msg)) => {
                panic!(
                    "proptest {name}: case {case} failed: {msg}\n\
                     minimal-input reporting: none (no shrinking); inputs: {inputs}"
                );
            }
        }
    }
}
