//! Golden-file test for `fisec report`: a checked-in fixture trace must
//! render to the checked-in HTML byte-for-byte.
//!
//! The renderer is deliberately deterministic (no timestamps, no
//! external assets), so any diff here is a real output change. To bless
//! a deliberate change:
//!
//! ```sh
//! FISEC_BLESS=1 cargo test -p fisec-core --test report_golden
//! ```

use fisec_core::report::render_html;
use fisec_core::trace;
use fisec_telemetry::{
    CampaignEndEvent, CampaignEvent, HotBlock, ProfileData, ProfileEvent, PropagationEvent,
    RunEvent, SlowShape, SpanEvent, TraceEvent,
};
use std::path::PathBuf;

fn fixture_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
}

fn run(bit: u8, outcome: &str, latency: Option<u64>, depth: Option<u64>) -> RunEvent {
    RunEvent {
        client: 0,
        addr: 0x0804_9100,
        byte_index: 0,
        bit,
        outcome: outcome.to_string(),
        location: 0,
        worker: 0,
        snapshot_replay: true,
        na_prefilter: false,
        cache_hit: false,
        icount: 1200 + u64::from(bit) * 100,
        micros: 40 + u64::from(bit),
        crash_latency: latency,
        transient_deviation: bit == 2,
        divergence_depth: depth,
        trace_latency: latency,
        taint_decision: None,
        taint_width: None,
        taint_compare_first: None,
    }
}

fn run_ev(bit: u8, outcome: &str, latency: Option<u64>, depth: Option<u64>) -> TraceEvent {
    TraceEvent::Run(run(bit, outcome, latency, depth))
}

/// A fixed, handcrafted trace exercising every report section the
/// renderer has: Table 1, phase profile, Figure 4, divergence depths,
/// propagation, spans and the hot-block table.
fn fixture_events() -> Vec<TraceEvent> {
    vec![
        TraceEvent::Campaign(CampaignEvent {
            app: "ftpd".to_string(),
            scheme: "baseline x86".to_string(),
            mode: "snapshot".to_string(),
            instructions: 2,
            cond_branches: 2,
            runs_per_client: 4,
            clients: vec!["Client1".to_string()],
            golden_denied: vec![true],
        }),
        run_ev(0, "NA", None, None),
        TraceEvent::Run(RunEvent {
            taint_decision: Some(6),
            taint_width: Some(2),
            taint_compare_first: Some(true),
            ..run(1, "SD", Some(9), Some(14))
        }),
        TraceEvent::Run(RunEvent {
            taint_decision: Some(85),
            taint_width: Some(5),
            taint_compare_first: Some(false),
            ..run(2, "SD", Some(130), Some(40))
        }),
        TraceEvent::Run(RunEvent {
            taint_decision: Some(31),
            taint_width: Some(9),
            taint_compare_first: Some(true),
            ..run(3, "BRK", None, Some(200))
        }),
        TraceEvent::Span(SpanEvent {
            name: "ftpd [baseline x86]".to_string(),
            cat: "campaign".to_string(),
            tid: 0,
            ts: 0,
            dur: 9000,
            addr: None,
        }),
        TraceEvent::Span(SpanEvent {
            name: "Client1".to_string(),
            cat: "client".to_string(),
            tid: 0,
            ts: 100,
            dur: 8000,
            addr: None,
        }),
        TraceEvent::Profile(Box::new(ProfileEvent {
            app: "ftpd".to_string(),
            mode: "snapshot".to_string(),
            data: ProfileData {
                blocks: vec![
                    HotBlock {
                        addr: 0x0804_9100,
                        dispatches: 40,
                        retired: 5200,
                    },
                    HotBlock {
                        addr: 0x0804_9200,
                        dispatches: 4,
                        retired: 64,
                    },
                ],
                slow: vec![SlowShape {
                    addr: 0x0804_9300,
                    shape: "rep movsb".to_string(),
                    count: 12,
                }],
                stepwise_retired: 36,
                cache_built: 2,
                cache_hits: 42,
                cache_invalidated: 4,
                ..ProfileData::default()
            },
        })),
        TraceEvent::Propagation(PropagationEvent {
            app: "ftpd".to_string(),
            mode: "snapshot".to_string(),
            seeded: 3,
            reached_decision: 3,
            compare_first: 2,
            deaths: 0,
            frozen: 0,
            fsv_seeded: 1,
            fsv_reached_decision: 1,
            fsv_compare_first: 1,
        }),
        TraceEvent::CampaignEnd(CampaignEndEvent {
            runs: 4,
            wall_micros: 9200,
            boot_micros: 1500,
            snapshot_micros: 400,
            replay_micros: 6000,
            classify_micros: 200,
            reassemble_micros: 100,
            fresh_boots: 1,
            restores: 3,
            ..CampaignEndEvent::default()
        }),
    ]
}

#[test]
fn report_matches_the_golden_file() {
    let trace_path = fixture_path("report_trace.jsonl");
    let golden_path = fixture_path("report_golden.html");

    if std::env::var_os("FISEC_BLESS").is_some() {
        let mut jsonl = String::new();
        for ev in fixture_events() {
            jsonl.push_str(&ev.to_json_line());
            jsonl.push('\n');
        }
        std::fs::write(&trace_path, jsonl).unwrap();
        let replay = trace::read_trace(&trace_path).unwrap();
        std::fs::write(&golden_path, render_html(&replay)).unwrap();
        return;
    }

    // The checked-in fixture parses back to exactly the events above
    // (pins the JSONL wire format of span/profile events) ...
    let replay = trace::read_trace(&trace_path).unwrap();
    assert_eq!(replay.campaigns.len(), 1);
    assert_eq!(replay.spans.len(), 2);
    let profile = replay.campaigns[0].profile.as_ref().expect("profile event");
    let TraceEvent::Profile(expected) = &fixture_events()[7] else {
        panic!("fixture layout changed");
    };
    assert_eq!(profile, expected.as_ref());

    // ... and renders to exactly the checked-in HTML.
    let golden = std::fs::read_to_string(&golden_path).unwrap();
    let html = render_html(&replay);
    assert_eq!(
        html, golden,
        "report output drifted from the golden file; if deliberate, \
         re-bless with FISEC_BLESS=1 cargo test -p fisec-core --test report_golden"
    );
}
