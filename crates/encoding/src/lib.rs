//! # fisec-encoding — the paper's new branch-instruction encoding (§6)
//!
//! The root cause of the study's security break-ins is that IA-32 encodes
//! its conditional branches *contiguously*: the 2-byte forms occupy
//! `0x70..=0x7F` and the 6-byte forms `0x0F 0x80..=0x8F`, so every pair of
//! opposite conditions (`je`/`jne`, …) differs in exactly one bit. A
//! single-bit error flips a denial into a grant.
//!
//! The paper's fix re-encodes the branch block so the minimum pairwise
//! Hamming distance becomes two: **bit 4 of the (second) opcode byte is
//! replaced by an odd-parity bit over the low nibble**. Branch encodings
//! that collide with existing non-branch opcodes swap places with them
//! (e.g. `jno` takes `0x61` and `popa` moves to `0x71`), which makes the
//! whole old↔new mapping an *involution* over bytes.
//!
//! Evaluation trick (§6.2): rather than building a new CPU, an injection
//! under the new encoding maps the target byte old→new, flips the chosen
//! bit there, and maps the result new→old for execution on the unchanged
//! CPU. [`remap_flip`] implements exactly that walk-through (the paper's
//! `je 0x74 → 0x64 → flip → 0x65 → 0x65` example is a doctest below).

pub mod new_isa;

pub use new_isa::{decode_new_isa, reencode_image_text};

use std::fmt;

/// Compute the re-encoded opcode byte: bit 4 := odd parity of the low
/// nibble (set when the low nibble has an even number of ones).
fn parity_reencode(b: u8) -> u8 {
    let low = b & 0x0F;
    let parity_bit = u8::from(low.count_ones().is_multiple_of(2));
    (b & 0xEF) | (parity_bit << 4)
}

/// Build the byte involution for a 16-opcode branch block starting at
/// `block` (`0x70` for the 2-byte forms, `0x80` for the second byte of
/// the 6-byte forms).
fn build_involution(block: u8) -> [u8; 256] {
    let mut map = [0u8; 256];
    for (i, m) in map.iter_mut().enumerate() {
        *m = i as u8;
    }
    for b in block..=block + 0x0F {
        let n = parity_reencode(b);
        if n != b {
            // The displaced non-branch opcode swaps into the vacated slot.
            map[b as usize] = n;
            map[n as usize] = b;
        }
    }
    map
}

/// Which byte of an instruction an injection hits, for mapping purposes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ByteCtx {
    /// The first opcode byte of a non-`0x0F`-prefixed instruction.
    OneByteOpcode,
    /// The byte after a `0x0F` escape (second opcode byte).
    SecondOpcodeByte,
    /// Operand/displacement/immediate bytes — unaffected by the mapping.
    Other,
}

/// The paper's two encodings.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum EncodingScheme {
    /// Stock IA-32 (contiguous branch opcodes, Hamming distance 1).
    #[default]
    Baseline,
    /// The §6.1 parity re-encoding (Hamming distance ≥ 2 within the
    /// branch block).
    NewEncoding,
}

impl fmt::Display for EncodingScheme {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EncodingScheme::Baseline => write!(f, "baseline x86"),
            EncodingScheme::NewEncoding => write!(f, "new parity encoding"),
        }
    }
}

impl EncodingScheme {
    /// Short, filename-safe identity tag. The campaign cache keys
    /// memoized results on it (and uses it in store file names), so the
    /// tag for an existing scheme must never change — add new tags for
    /// new schemes instead.
    pub fn cache_tag(self) -> &'static str {
        match self {
            EncodingScheme::Baseline => "base",
            EncodingScheme::NewEncoding => "newenc",
        }
    }
}

/// Old→new (and equally new→old) byte mapping for one-byte opcodes.
pub fn map_1byte(b: u8) -> u8 {
    static MAP: std::sync::OnceLock<[u8; 256]> = std::sync::OnceLock::new();
    MAP.get_or_init(|| build_involution(0x70))[b as usize]
}

/// Old→new byte mapping for the second opcode byte of `0x0F`-prefixed
/// instructions.
pub fn map_0f_second(b: u8) -> u8 {
    static MAP: std::sync::OnceLock<[u8; 256]> = std::sync::OnceLock::new();
    MAP.get_or_init(|| build_involution(0x80))[b as usize]
}

/// Inject a single-bit error into `byte` under the chosen scheme.
///
/// Baseline: plain bit flip. New encoding: map old→new, flip, map
/// new→old (§6.2).
///
/// ```
/// use fisec_encoding::{remap_flip, ByteCtx, EncodingScheme};
/// // The paper's walk-through: je (0x74) maps to 0x64; flipping the
/// // least-significant bit gives 0x65, which maps back to 0x65 — a
/// // segment-override prefix rather than the opposite branch.
/// let b = remap_flip(0x74, 0, ByteCtx::OneByteOpcode, EncodingScheme::NewEncoding);
/// assert_eq!(b, 0x65);
/// // And the reverse example: old 0x65 → new 0x65 → flip lsb → 0x64 →
/// // back to old je 0x74.
/// let b = remap_flip(0x65, 0, ByteCtx::OneByteOpcode, EncodingScheme::NewEncoding);
/// assert_eq!(b, 0x74);
/// // Under the baseline, je flips straight to jne.
/// let b = remap_flip(0x74, 0, ByteCtx::OneByteOpcode, EncodingScheme::Baseline);
/// assert_eq!(b, 0x75);
/// ```
pub fn remap_flip(byte: u8, bit: u8, ctx: ByteCtx, scheme: EncodingScheme) -> u8 {
    assert!(bit < 8, "bit index out of range");
    let flip = |b: u8| b ^ (1 << bit);
    match scheme {
        EncodingScheme::Baseline => flip(byte),
        EncodingScheme::NewEncoding => match ctx {
            ByteCtx::OneByteOpcode => map_1byte(flip(map_1byte(byte))),
            ByteCtx::SecondOpcodeByte => map_0f_second(flip(map_0f_second(byte))),
            ByteCtx::Other => flip(byte),
        },
    }
}

/// One row of the paper's Table 4.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Table4Row {
    /// Mnemonic ("JO", "JNO", ...).
    pub mnemonic: &'static str,
    /// 2-byte form, old encoding.
    pub two_old: u8,
    /// 2-byte form, new encoding.
    pub two_new: u8,
    /// Second opcode byte of the 6-byte form, old encoding.
    pub six_old: u8,
    /// Second opcode byte of the 6-byte form, new encoding.
    pub six_new: u8,
}

/// The sixteen conditional-branch mnemonics in opcode order (the paper's
/// Table 4 uses JNB/JNA/JNL/JNG where Intel prefers JAE/JBE/JGE/JLE).
pub const MNEMONICS: [&str; 16] = [
    "JO", "JNO", "JB", "JNB", "JE", "JNE", "JNA", "JA", "JS", "JNS", "JP", "JNP", "JL", "JNL",
    "JNG", "JG",
];

/// Regenerate the paper's Table 4 from the mapping functions.
pub fn table4() -> Vec<Table4Row> {
    (0u8..16)
        .map(|i| Table4Row {
            mnemonic: MNEMONICS[i as usize],
            two_old: 0x70 + i,
            two_new: map_1byte(0x70 + i),
            six_old: 0x80 + i,
            six_new: map_0f_second(0x80 + i),
        })
        .collect()
}

/// Hamming distance between two bytes.
pub fn hamming(a: u8, b: u8) -> u32 {
    (a ^ b).count_ones()
}

/// Minimum pairwise Hamming distance within a set of opcode bytes.
/// Returns `None` for sets with fewer than two elements.
pub fn min_pairwise_hd(set: &[u8]) -> Option<u32> {
    let mut min = None;
    for (i, a) in set.iter().enumerate() {
        for b in &set[i + 1..] {
            let d = hamming(*a, *b);
            min = Some(min.map_or(d, |m: u32| m.min(d)));
        }
    }
    min
}

/// Render Table 4 in the paper's layout.
pub fn render_table4() -> String {
    let mut out = String::from("Mnemonic  2-byte Old  2-byte New  6-byte Old  6-byte New\n");
    for r in table4() {
        out.push_str(&format!(
            "{:<9} {:<11} {:<11} 0F {:<8} 0F {:<8}\n",
            r.mnemonic,
            format!("{:02X}", r.two_old),
            format!("{:02X}", r.two_new),
            format!("{:02X}", r.six_old),
            format!("{:02X}", r.six_new),
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The paper's Table 4, verbatim, as the expected fixture.
    const PAPER_2BYTE_NEW: [u8; 16] = [
        0x70, 0x61, 0x62, 0x73, 0x64, 0x75, 0x76, 0x67, 0x68, 0x79, 0x7A, 0x6B, 0x7C, 0x6D, 0x6E,
        0x7F,
    ];
    const PAPER_6BYTE_NEW: [u8; 16] = [
        0x90, 0x81, 0x82, 0x93, 0x84, 0x95, 0x96, 0x87, 0x88, 0x99, 0x9A, 0x8B, 0x9C, 0x8D, 0x8E,
        0x9F,
    ];

    #[test]
    fn table4_matches_paper_exactly() {
        for (i, row) in table4().iter().enumerate() {
            assert_eq!(
                row.two_new, PAPER_2BYTE_NEW[i],
                "2-byte row {} ({})",
                i, row.mnemonic
            );
            assert_eq!(
                row.six_new, PAPER_6BYTE_NEW[i],
                "6-byte row {} ({})",
                i, row.mnemonic
            );
        }
    }

    #[test]
    fn mapping_is_involution() {
        for b in 0u16..=255 {
            let b = b as u8;
            assert_eq!(map_1byte(map_1byte(b)), b, "1byte {b:#04x}");
            assert_eq!(map_0f_second(map_0f_second(b)), b, "0f {b:#04x}");
        }
    }

    #[test]
    fn old_branch_block_has_distance_one() {
        let old: Vec<u8> = (0x70..=0x7F).collect();
        assert_eq!(min_pairwise_hd(&old), Some(1));
    }

    #[test]
    fn new_branch_block_has_distance_two() {
        let new: Vec<u8> = (0x70u8..=0x7F).map(map_1byte).collect();
        assert_eq!(min_pairwise_hd(&new), Some(2));
        let new6: Vec<u8> = (0x80u8..=0x8F).map(map_0f_second).collect();
        assert_eq!(min_pairwise_hd(&new6), Some(2));
    }

    #[test]
    fn no_single_bit_flip_maps_branch_to_branch_under_new_encoding() {
        // The headline property: under the new encoding, no single-bit
        // error can turn one conditional branch into another.
        for old in 0x70u8..=0x7F {
            for bit in 0..8 {
                let result = remap_flip(
                    old,
                    bit,
                    ByteCtx::OneByteOpcode,
                    EncodingScheme::NewEncoding,
                );
                if (0x70..=0x7F).contains(&result) {
                    assert_eq!(
                        result, old,
                        "flip bit {bit} of {old:#04x} reached branch {result:#04x}"
                    );
                }
            }
        }
        for old in 0x80u8..=0x8F {
            for bit in 0..8 {
                let result = remap_flip(
                    old,
                    bit,
                    ByteCtx::SecondOpcodeByte,
                    EncodingScheme::NewEncoding,
                );
                if (0x80..=0x8F).contains(&result) {
                    assert_eq!(result, old);
                }
            }
        }
    }

    #[test]
    fn baseline_je_jne_adjacent() {
        assert_eq!(
            remap_flip(0x74, 0, ByteCtx::OneByteOpcode, EncodingScheme::Baseline),
            0x75
        );
        assert_eq!(hamming(0x74, 0x75), 1);
    }

    #[test]
    fn paper_walkthrough_examples() {
        // je 0x74 -> new 0x64, flip lsb -> 0x65, back -> 0x65.
        assert_eq!(map_1byte(0x74), 0x64);
        assert_eq!(
            remap_flip(0x74, 0, ByteCtx::OneByteOpcode, EncodingScheme::NewEncoding),
            0x65
        );
        // 0x65 -> 0x65, flip lsb -> 0x64, back -> 0x74 (je).
        assert_eq!(map_1byte(0x65), 0x65);
        assert_eq!(
            remap_flip(0x65, 0, ByteCtx::OneByteOpcode, EncodingScheme::NewEncoding),
            0x74
        );
    }

    #[test]
    fn swapped_non_branch_opcodes() {
        // jno takes 0x61; popa moves to 0x71.
        assert_eq!(map_1byte(0x71), 0x61);
        assert_eq!(map_1byte(0x61), 0x71);
        // setcc space swaps for the 6-byte forms: 0F 80 <-> 0F 90.
        assert_eq!(map_0f_second(0x80), 0x90);
        assert_eq!(map_0f_second(0x90), 0x80);
    }

    #[test]
    fn operand_bytes_unaffected() {
        for scheme in [EncodingScheme::Baseline, EncodingScheme::NewEncoding] {
            assert_eq!(remap_flip(0xAB, 3, ByteCtx::Other, scheme), 0xAB ^ 0x08);
        }
    }

    #[test]
    fn unrelated_opcodes_unchanged_by_mapping() {
        for b in [0x00u8, 0x50, 0x89, 0xC3, 0xE8, 0xFF] {
            assert_eq!(map_1byte(b), b, "{b:#04x}");
        }
    }

    #[test]
    fn render_table4_contains_key_rows() {
        let s = render_table4();
        assert!(s.contains("JE"));
        assert!(s.contains("74"));
        assert!(s.contains("64"));
        assert!(s.lines().count() >= 17);
    }

    #[test]
    #[should_panic(expected = "bit index")]
    fn bit_out_of_range_panics() {
        let _ = remap_flip(0x74, 8, ByteCtx::Other, EncodingScheme::Baseline);
    }
}
