//! `fisec` — command-line driver for the DSN'01 reproduction.
//!
//! ```text
//! fisec table1  [--app ftpd|sshd|both] [--threads N] [--json]
//! fisec table3  [--app ...]
//! fisec table5  [--app ...]
//! fisec figure4 [--app ftpd] [--client N]
//! fisec random  [--runs N] [--seed S] [--new-encoding]
//! fisec load    [--samples N] [--seed S]
//! fisec targets [--app ...]
//! fisec disasm  --app ftpd [--func pass]
//! fisec breakins [--app ...]
//! fisec ablation [--seed S]
//! fisec forensics [--app ftpd] [--top K] [--stride N]
//! fisec explain --app ftpd --addr 0xADDR [--byte N] [--bit N]
//! fisec propagate --app ftpd --addr 0xADDR [--byte N] [--bit N]
//! fisec stats TRACE.jsonl [--json]
//! fisec profile [--app ftpd|sshd] [--json] | fisec profile TRACE.jsonl
//! fisec report TRACE.jsonl [--out report.html]
//! fisec bench-diff BENCH_campaign.json [--factor F]
//! fisec help
//! ```
//!
//! The campaign commands (`table1`/`table3`/`table5`/`figure4`) accept
//! `--trace-out PATH` to stream one JSONL event per injection run and
//! `--progress` for a live runs/s meter plus a phase-profile breakdown
//! on stderr; `fisec stats` replays a saved trace back into the tables.
//! `--recorder` turns on the flight recorder campaign-wide (divergence
//! depths in events and metrics); `fisec figure4 --from-trace` rebuilds
//! the histogram purely from recorded traces and hard-checks it against
//! the live one. `fisec explain` renders one injection's annotated
//! divergence timeline against the golden run; `fisec propagate`
//! renders the same injection's *data-flow* story — the taint tracer's
//! corruption timeline from the flipped destination to the first
//! tainted compare/branch. `--propagation` arms the tracer
//! campaign-wide (taint metrics in events, a propagation aggregate in
//! the trace and report).

use fisec_apps::AppSpec;
use fisec_core::{
    cache, figure4, load, random, run_campaign, run_campaign_cached, run_campaign_traced, tables,
    trace, CampaignCache, CampaignConfig, CampaignSummary, EncodingScheme,
};
use fisec_inject::{crash_forensics, enumerate_targets, golden_run, run_injection, OutcomeClass};
use fisec_telemetry::{JsonlSink, MemorySink, NullSink, Telemetry};
use std::process::ExitCode;
use std::sync::Arc;
use std::time::Instant;

#[derive(Debug)]
struct Args {
    cmd: String,
    app: String,
    func: Option<String>,
    client: usize,
    runs: usize,
    samples: usize,
    seed: u64,
    threads: Option<usize>,
    top: Option<usize>,
    stride: usize,
    json: bool,
    new_encoding: bool,
    no_block_cache: bool,
    no_trace_cache: bool,
    trace_out: Option<String>,
    progress: bool,
    path: Option<String>,
    addr: Option<u32>,
    byte: u8,
    bit: u8,
    recorder: bool,
    propagation: bool,
    from_trace: bool,
    batch: usize,
    target_ci: Option<f64>,
    resume: Option<String>,
    from_scratch: bool,
    chrome_trace: Option<String>,
    profile: bool,
    factor: f64,
    out: Option<String>,
    baseline: Option<String>,
    cache: Option<String>,
    no_cache: bool,
    max_size: Option<u64>,
    max_age: Option<u64>,
}

fn parse_args() -> Result<Args, String> {
    parse_args_from(std::env::args().skip(1))
}

fn parse_args_from(argv: impl IntoIterator<Item = String>) -> Result<Args, String> {
    let mut argv = argv.into_iter();
    let cmd = argv.next().ok_or_else(usage)?;
    let mut a = Args {
        cmd,
        app: "both".into(),
        func: None,
        client: 1,
        runs: 3000,
        samples: 200,
        seed: 2001,
        threads: None,
        top: None,
        stride: 4,
        json: false,
        new_encoding: false,
        no_block_cache: false,
        no_trace_cache: false,
        trace_out: None,
        progress: false,
        path: None,
        addr: None,
        byte: 0,
        bit: 0,
        recorder: false,
        propagation: false,
        from_trace: false,
        batch: 500,
        target_ci: None,
        resume: None,
        from_scratch: false,
        chrome_trace: None,
        profile: false,
        factor: 1.0,
        out: None,
        baseline: None,
        cache: None,
        no_cache: false,
        max_size: None,
        max_age: None,
    };
    if matches!(a.cmd.as_str(), "--help" | "-h") {
        a.cmd = "help".to_string();
        return Ok(a);
    }
    while let Some(flag) = argv.next() {
        let mut val = |name: &str| -> Result<String, String> {
            argv.next().ok_or(format!("{name} needs a value"))
        };
        match flag.as_str() {
            "--app" => a.app = val("--app")?,
            "--func" => a.func = Some(val("--func")?),
            "--client" => a.client = val("--client")?.parse().map_err(|e| format!("{e}"))?,
            "--runs" => a.runs = val("--runs")?.parse().map_err(|e| format!("{e}"))?,
            "--samples" => a.samples = val("--samples")?.parse().map_err(|e| format!("{e}"))?,
            "--seed" => a.seed = val("--seed")?.parse().map_err(|e| format!("{e}"))?,
            "--threads" => a.threads = Some(val("--threads")?.parse().map_err(|e| format!("{e}"))?),
            "--top" => a.top = Some(val("--top")?.parse().map_err(|e| format!("{e}"))?),
            "--stride" => {
                a.stride = val("--stride")?.parse().map_err(|e| format!("{e}"))?;
                if a.stride == 0 {
                    return Err("--stride must be at least 1".to_string());
                }
            }
            "--json" => a.json = true,
            "--new-encoding" => a.new_encoding = true,
            "--no-block-cache" => a.no_block_cache = true,
            "--no-trace-cache" => a.no_trace_cache = true,
            "--trace-out" => a.trace_out = Some(val("--trace-out")?),
            "--progress" => a.progress = true,
            "--addr" => {
                let v = val("--addr")?;
                let hex = v.strip_prefix("0x").or_else(|| v.strip_prefix("0X"));
                a.addr = Some(
                    match hex {
                        Some(h) => u32::from_str_radix(h, 16),
                        None => v.parse(),
                    }
                    .map_err(|e| format!("--addr {v}: {e}"))?,
                );
            }
            "--byte" => a.byte = val("--byte")?.parse().map_err(|e| format!("{e}"))?,
            "--bit" => {
                a.bit = val("--bit")?.parse().map_err(|e| format!("{e}"))?;
                if a.bit > 7 {
                    return Err(format!("--bit {} out of range (bits are 0..=7)", a.bit));
                }
            }
            "--recorder" => a.recorder = true,
            "--propagation" => a.propagation = true,
            "--from-trace" => a.from_trace = true,
            "--batch" => {
                a.batch = val("--batch")?.parse().map_err(|e| format!("{e}"))?;
                if a.batch == 0 {
                    return Err("--batch must be at least 1".to_string());
                }
            }
            "--target-ci" => {
                let w: f64 = val("--target-ci")?.parse().map_err(|e| format!("{e}"))?;
                if !(w > 0.0 && w < 1.0) {
                    return Err(format!("--target-ci {w} must be in (0, 1)"));
                }
                a.target_ci = Some(w);
            }
            "--resume" => a.resume = Some(val("--resume")?),
            "--from-scratch" => a.from_scratch = true,
            "--chrome-trace" => a.chrome_trace = Some(val("--chrome-trace")?),
            "--profile" => a.profile = true,
            "--factor" => {
                let f: f64 = val("--factor")?.parse().map_err(|e| format!("{e}"))?;
                if f <= 0.0 || f.is_nan() {
                    return Err(format!("--factor {f} must be positive"));
                }
                a.factor = f;
            }
            "--out" => a.out = Some(val("--out")?),
            "--baseline" => a.baseline = Some(val("--baseline")?),
            "--cache" => a.cache = Some(val("--cache")?),
            "--no-cache" => a.no_cache = true,
            "--max-size" => a.max_size = Some(parse_size(&val("--max-size")?)?),
            "--max-age" => a.max_age = Some(parse_age(&val("--max-age")?)?),
            "--help" | "-h" => {
                a.cmd = "help".to_string();
                return Ok(a);
            }
            other if !other.starts_with('-') && a.path.is_none() => a.path = Some(flag),
            other => return Err(format!("unknown flag `{other}`\n{}", usage())),
        }
    }
    Ok(a)
}

fn usage() -> String {
    "usage: fisec <table1|table3|table5|figure4|random|load|targets|disasm|breakins|ablation|forensics|explain|propagate|stats|profile|report|bench-diff|cache|help> [flags]\n\
     flags: --app ftpd|sshd|both  --func NAME  --client N  --runs N  --samples N\n\
            --seed S  --threads N  --top K  --stride N  --json  --new-encoding\n\
            --no-block-cache  --no-trace-cache  --trace-out PATH  --progress  --recorder\n\
            --propagation  --addr 0xADDR  --byte N  --bit N  --from-trace\n\
            --batch N  --target-ci WIDTH  --resume LEDGER  --from-scratch\n\
            --profile  --chrome-trace OUT.json  --out PATH  --factor F\n\
            --cache DIR  --no-cache  --max-size BYTES[k|m|g]  --max-age SECS[h|d]\n\
     stats takes the trace file as a positional argument: fisec stats run.jsonl\n\
     explain renders one injection's divergence timeline: fisec explain --app ftpd --addr 0xADDR --byte N --bit N\n\
     propagate renders the same injection's corruption (taint) timeline; --propagation arms the tracer campaign-wide\n\
     random streams a sharded campaign; --trace-out doubles as its resumable ledger\n\
     profile runs a profiled campaign (or replays one: fisec profile run.jsonl) and ranks hot blocks; --json emits the tables as JSON\n\
     profile --baseline OLD.jsonl adds the residual slow-path delta vs an earlier saved trace\n\
     report renders a saved trace as one self-contained HTML file: fisec report run.jsonl --out report.html\n\
     bench-diff measures a fresh campaign against the recorded baseline: fisec bench-diff BENCH_campaign.json\n\
     campaign commands accept --profile (hot-spot profiler) and --chrome-trace OUT.json (Perfetto span export)\n\
     campaign commands memoize checkpoint groups in ~/.fisec-cache (override: --cache DIR, disable: --no-cache)\n\
     cache ls|verify|gc inspects the store: ls lists entries, verify re-executes a sampled group per store\n\
     and diffs it against the memoized runs (nonzero exit on drift), gc evicts by --max-size / --max-age"
        .to_string()
}

/// Parse a byte size with an optional k/m/g suffix (powers of 1024).
fn parse_size(s: &str) -> Result<u64, String> {
    let num = s.trim_end_matches(|c: char| c.is_ascii_alphabetic());
    let mult = match s[num.len()..].to_ascii_lowercase().as_str() {
        "" | "b" => 1u64,
        "k" | "kb" => 1 << 10,
        "m" | "mb" => 1 << 20,
        "g" | "gb" => 1 << 30,
        other => return Err(format!("--max-size: unknown suffix `{other}`")),
    };
    let v: u64 = num.parse().map_err(|e| format!("--max-size {s}: {e}"))?;
    Ok(v.saturating_mul(mult))
}

/// Parse an age with an optional s/m/h/d suffix (plain number = seconds).
fn parse_age(s: &str) -> Result<u64, String> {
    let num = s.trim_end_matches(|c: char| c.is_ascii_alphabetic());
    let mult = match s[num.len()..].to_ascii_lowercase().as_str() {
        "" | "s" => 1u64,
        "m" => 60,
        "h" => 3600,
        "d" => 86_400,
        other => return Err(format!("--max-age: unknown suffix `{other}`")),
    };
    let v: u64 = num.parse().map_err(|e| format!("--max-age {s}: {e}"))?;
    Ok(v.saturating_mul(mult))
}

/// The campaign cache the run commands use: `--no-cache` disables,
/// `--cache DIR` overrides the default `~/.fisec-cache` (which is
/// silently off when `HOME` is unset).
fn cache_for(args: &Args) -> Option<CampaignCache> {
    if args.no_cache {
        return None;
    }
    match &args.cache {
        Some(dir) => Some(CampaignCache::at(std::path::PathBuf::from(dir))),
        None => CampaignCache::default_root().map(CampaignCache::at),
    }
}

fn apps_for(name: &str) -> Result<Vec<AppSpec>, String> {
    match name {
        "ftpd" => Ok(vec![AppSpec::ftpd()]),
        "sshd" => Ok(vec![AppSpec::sshd()]),
        "both" => Ok(vec![AppSpec::ftpd(), AppSpec::sshd()]),
        other => Err(format!("unknown app `{other}` (use ftpd, sshd or both)")),
    }
}

fn cfg_of(a: &Args, scheme: EncodingScheme) -> CampaignConfig {
    let mut cfg = CampaignConfig {
        scheme,
        block_cache: !a.no_block_cache,
        trace_cache: !a.no_trace_cache,
        flight_recorder: a.recorder || a.from_trace,
        propagation: a.propagation,
        profiler: a.profile,
        spans: a.chrome_trace.is_some(),
        ..CampaignConfig::default()
    };
    if let Some(t) = a.threads {
        cfg.threads = t;
    }
    cfg
}

/// Build the telemetry bundle the campaign commands run under:
/// `--trace-out` streams JSONL events, `--progress` adds the live meter
/// (and, on its own, still collects metrics for the stderr breakdown).
/// `--chrome-trace` without `--trace-out` retains the events in memory
/// (the second tuple slot) so the span exporter has something to read.
fn telemetry_for(args: &Args) -> Result<(Telemetry, Option<Arc<MemorySink>>), String> {
    match &args.trace_out {
        Some(path) => {
            let sink = JsonlSink::create(path).map_err(|e| format!("{path}: {e}"))?;
            Ok((Telemetry::new(Arc::new(sink), args.progress), None))
        }
        None if args.chrome_trace.is_some() => {
            let mem = Arc::new(MemorySink::new());
            Ok((
                Telemetry::new(Arc::<MemorySink>::clone(&mem), args.progress),
                Some(mem),
            ))
        }
        None if args.progress => Ok((Telemetry::new(Arc::new(NullSink), true), None)),
        None => Ok((Telemetry::disabled(), None)),
    }
}

/// Export the campaign's span events as Chrome trace-event JSON
/// (`--chrome-trace OUT.json`, loadable in Perfetto / `chrome://tracing`).
/// Spans are re-read from the `--trace-out` file when one was written,
/// otherwise from the retained in-memory sink; strict per-lane nesting
/// is verified before anything is written.
fn export_chrome_trace(args: &Args, mem: Option<&MemorySink>) -> Result<(), String> {
    let Some(out) = &args.chrome_trace else {
        return Ok(());
    };
    let events = match (&args.trace_out, mem) {
        (Some(path), _) => fisec_telemetry::read_jsonl_path(path)?,
        (None, Some(m)) => m.events(),
        (None, None) => return Err("--chrome-trace needs an event stream".to_string()),
    };
    let spans = events
        .iter()
        .filter(|e| matches!(e, fisec_telemetry::TraceEvent::Span(_)))
        .count();
    if spans == 0 {
        return Err("no span events were recorded (is span tracing on?)".to_string());
    }
    fisec_telemetry::check_span_nesting(&events)?;
    let json = fisec_telemetry::chrome_trace_json(&events);
    std::fs::write(out, &json).map_err(|e| format!("{out}: {e}"))?;
    eprintln!("chrome trace: {out} ({spans} spans)");
    Ok(())
}

/// After the campaigns: print the phase breakdown and engine metrics to
/// stderr when the user asked to watch (`--progress`).
fn report_telemetry(args: &Args, tel: &Telemetry, wall_start: Instant) {
    tel.sink.flush();
    if !args.progress {
        return;
    }
    let snap = tel.metrics.snapshot();
    let wall = u64::try_from(wall_start.elapsed().as_micros()).unwrap_or(u64::MAX);
    eprint!(
        "{}",
        fisec_telemetry::render_phase_table(snap.phases(), wall)
    );
    eprint!("{}", snap.render());
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

#[allow(clippy::too_many_lines)]
fn run(args: &Args) -> Result<(), String> {
    if !matches!(
        args.cmd.as_str(),
        "stats" | "profile" | "report" | "bench-diff" | "cache"
    ) {
        if let Some(p) = &args.path {
            return Err(format!(
                "unexpected argument `{p}` (only stats/profile/report/bench-diff/cache take a positional)"
            ));
        }
    }
    match args.cmd.as_str() {
        "help" => {
            println!("{}", usage());
        }
        "table1" | "table3" => {
            let apps = apps_for(&args.app)?;
            let scheme = if args.new_encoding {
                EncodingScheme::NewEncoding
            } else {
                EncodingScheme::Baseline
            };
            let cfg = cfg_of(args, scheme);
            let cache = cache_for(args);
            let (tel, mem) = telemetry_for(args)?;
            let wall_start = Instant::now();
            let results: Vec<_> = apps
                .iter()
                .map(|a| run_campaign_cached(a, &cfg, &tel, cache.as_ref()))
                .collect();
            report_telemetry(args, &tel, wall_start);
            export_chrome_trace(args, mem.as_deref())?;
            let refs: Vec<_> = results.iter().collect();
            if args.json {
                for r in &results {
                    println!("{}", CampaignSummary::from(r).to_json());
                }
            } else if args.cmd == "table1" {
                println!("{}", tables::render_table1(&refs));
            } else {
                println!("{}", tables::render_table2());
                println!("{}", tables::render_table3(&refs));
            }
        }
        "table5" => {
            let apps = apps_for(&args.app)?;
            let base_cfg = cfg_of(args, EncodingScheme::Baseline);
            let new_cfg = cfg_of(args, EncodingScheme::NewEncoding);
            let cache = cache_for(args);
            let (tel, mem) = telemetry_for(args)?;
            let wall_start = Instant::now();
            let base: Vec<_> = apps
                .iter()
                .map(|a| run_campaign_cached(a, &base_cfg, &tel, cache.as_ref()))
                .collect();
            let new: Vec<_> = apps
                .iter()
                .map(|a| run_campaign_cached(a, &new_cfg, &tel, cache.as_ref()))
                .collect();
            report_telemetry(args, &tel, wall_start);
            export_chrome_trace(args, mem.as_deref())?;
            if args.json {
                for r in base.iter().chain(&new) {
                    println!("{}", CampaignSummary::from(r).to_json());
                }
            } else {
                println!("{}", fisec_encoding::render_table4());
                let b: Vec<_> = base.iter().collect();
                let n: Vec<_> = new.iter().collect();
                println!("{}", tables::render_table5(&b, &n));
            }
        }
        "figure4" => {
            let apps = apps_for(if args.app == "both" {
                "ftpd"
            } else {
                &args.app
            })?;
            let app = &apps[0];
            if args.client == 0 || args.client > app.clients.len() {
                return Err(format!(
                    "--client {} out of range for {} (valid: 1..={})",
                    args.client,
                    app.name,
                    app.clients.len()
                ));
            }
            let cfg = cfg_of(args, EncodingScheme::Baseline);
            let cache = cache_for(args);
            let (tel, mem) = telemetry_for(args)?;
            let wall_start = Instant::now();
            let result = run_campaign_cached(app, &cfg, &tel, cache.as_ref());
            report_telemetry(args, &tel, wall_start);
            export_chrome_trace(args, mem.as_deref())?;
            let c = &result.clients[args.client - 1];
            let h = if args.from_trace {
                // Rebuild Figure 4 purely from the recorded flight
                // traces and hard-check it against the live histogram:
                // any difference is an engine bug, not a rendering one.
                let live = figure4::histogram(&c.crash_latencies);
                let traced = figure4::histogram(&c.trace_crash_latencies);
                if traced != live {
                    return Err(format!(
                        "trace-derived Figure 4 diverges from the live histogram:\n\
                         trace-derived:\n{}\nlive:\n{}",
                        figure4::render(&traced),
                        figure4::render(&live)
                    ));
                }
                eprintln!(
                    "figure4: rebuilt from {} recorded traces; matches the live histogram",
                    traced.samples
                );
                traced
            } else {
                figure4::histogram(&c.crash_latencies)
            };
            if args.json {
                println!(
                    "{}",
                    serde_json::to_string_pretty(&h).map_err(|e| e.to_string())?
                );
            } else {
                println!("{}", figure4::render(&h));
                println!(
                    "transient deviations before crash: {} of {}",
                    c.transient_deviations,
                    c.crash_latencies.len()
                );
            }
        }
        "explain" | "propagate" => {
            let apps = apps_for(if args.app == "both" {
                "ftpd"
            } else {
                &args.app
            })?;
            let app = &apps[0];
            let addr = args.addr.ok_or_else(|| {
                format!(
                    "{} needs --addr 0xADDR (see `fisec breakins` for candidates)",
                    args.cmd
                )
            })?;
            check_flip_byte(app, addr, args.byte)?;
            let scheme = if args.new_encoding {
                EncodingScheme::NewEncoding
            } else {
                EncodingScheme::Baseline
            };
            let text = if args.cmd == "explain" {
                fisec_core::explain::explain(app, args.client, addr, args.byte, args.bit, scheme)?
            } else {
                fisec_core::propagate::propagate(
                    app,
                    args.client,
                    addr,
                    args.byte,
                    args.bit,
                    scheme,
                )?
            };
            print!("{text}");
        }
        "stats" => {
            let path = args
                .path
                .as_ref()
                .ok_or("stats needs a trace file: fisec stats run.jsonl")?;
            let replay = trace::read_trace(path)?;
            if replay.campaigns.is_empty() && replay.random.is_empty() {
                return Err(format!("{path}: no campaigns in trace"));
            }
            if args.json {
                for c in &replay.campaigns {
                    println!("{}", CampaignSummary::from(&c.result).to_json());
                }
                for r in &replay.random {
                    let summary = r.stats.json_summary();
                    println!(
                        "{}",
                        serde_json::to_string_pretty(&summary).map_err(|e| e.to_string())?
                    );
                }
            } else {
                print!("{}", trace::render_stats(&replay));
            }
        }
        "random" => {
            let apps = apps_for(if args.app == "both" {
                "ftpd"
            } else {
                &args.app
            })?;
            let app = &apps[0];
            let engine = fisec_inject::EngineOpts {
                block_cache: !args.no_block_cache,
                trace_cache: !args.no_trace_cache,
                ..fisec_inject::EngineOpts::default()
            };
            let threads = args.threads.unwrap_or(1).max(1);
            let wall_start = Instant::now();
            let (stats, prior_runs) = if let Some(ledger_path) = &args.resume {
                // Resume: the ledger header is the configuration; only
                // execution knobs (threads, engine) come from flags.
                let ledger = random::read_ledger(ledger_path)?;
                if ledger.header.app != app.name {
                    return Err(format!(
                        "{ledger_path} records a campaign for {} but --app selects {} \
                         (rerun with --app {})",
                        ledger.header.app, app.name, ledger.header.app
                    ));
                }
                let mut cfg = random::RandomConfig::from_header(&ledger.header, threads, engine)?;
                cfg.client = app
                    .clients
                    .iter()
                    .position(|c| c.name == ledger.header.client)
                    .ok_or_else(|| {
                        format!(
                            "ledger client `{}` is not a client of {}",
                            ledger.header.client, app.name
                        )
                    })?;
                random::truncate_torn_tail(ledger_path, &ledger)?;
                let sink =
                    JsonlSink::append(ledger_path).map_err(|e| format!("{ledger_path}: {e}"))?;
                let tel = Telemetry::new(Arc::new(sink), args.progress);
                let stats = random::resume_random_streaming(app, &cfg, &ledger, &tel)?;
                report_telemetry(args, &tel, wall_start);
                (stats, ledger.committed as usize)
            } else {
                if args.client == 0 || args.client > app.clients.len() {
                    return Err(format!(
                        "--client {} out of range for {} (valid: 1..={})",
                        args.client,
                        app.name,
                        app.clients.len()
                    ));
                }
                let cfg = random::RandomConfig {
                    runs: args.runs,
                    seed: args.seed,
                    scheme: if args.new_encoding {
                        EncodingScheme::NewEncoding
                    } else {
                        EncodingScheme::Baseline
                    },
                    mode: if args.from_scratch {
                        fisec_core::ExecutionMode::FromScratch
                    } else {
                        fisec_core::ExecutionMode::Snapshot
                    },
                    client: args.client - 1,
                    threads,
                    batch: args.batch,
                    target_ci: args.target_ci,
                    engine,
                };
                let (tel, _) = telemetry_for(args)?;
                let stats = random::run_random_streaming(app, &cfg, &tel)?;
                report_telemetry(args, &tel, wall_start);
                (stats, 0)
            };
            if args.json {
                println!(
                    "{}",
                    serde_json::to_string_pretty(&stats.json_summary())
                        .map_err(|e| e.to_string())?
                );
            } else {
                print!("{}", random::render_report(&stats));
                let secs = wall_start.elapsed().as_secs_f64();
                let executed = stats.result.runs.saturating_sub(prior_runs);
                eprintln!(
                    "wall {secs:.1}s ({:.0} runs/s this invocation)",
                    if secs > 0.0 {
                        executed as f64 / secs
                    } else {
                        0.0
                    }
                );
            }
        }
        "profile" => {
            let top = args.top.unwrap_or(fisec_core::hotblocks::DEFAULT_TOP);
            if let Some(path) = &args.path {
                // Replay: render the profile events a saved trace carries.
                let replay = trace::read_trace(path)?;
                let profiled: Vec<_> = replay
                    .campaigns
                    .iter()
                    .filter_map(|c| c.profile.as_ref())
                    .collect();
                if profiled.is_empty() {
                    return Err(format!(
                        "{path}: no profile events (record the trace with --profile)"
                    ));
                }
                for p in &profiled {
                    if args.json {
                        // Machine-readable mirror of the hot-block and
                        // slow-path tables: one ProfileEvent JSON doc
                        // per profiled campaign (schema in README.md).
                        println!(
                            "{}",
                            serde_json::to_string_pretty(*p).map_err(|e| e.to_string())?
                        );
                        continue;
                    }
                    println!("== {} — {} engine ==", p.app, p.mode);
                    let app = match p.app.as_str() {
                        "ftpd" => Some(AppSpec::ftpd()),
                        "sshd" => Some(AppSpec::sshd()),
                        _ => None,
                    };
                    print!(
                        "{}",
                        fisec_core::hotblocks::render_hot_blocks(
                            &p.data,
                            app.as_ref().map(|a| &a.image),
                            top
                        )
                    );
                }
                if let Some(base_path) = &args.baseline {
                    // Burn-down view: this trace's residual slow path
                    // against an earlier saved trace of the same
                    // workload, tagging shapes lowered since then.
                    let base = trace::read_trace(base_path)?;
                    let mut before = fisec_telemetry::ProfileData::default();
                    for c in &base.campaigns {
                        if let Some(p) = &c.profile {
                            before.merge(&p.data);
                        }
                    }
                    if before.is_empty() {
                        return Err(format!(
                            "{base_path}: no profile events (record the baseline with --profile)"
                        ));
                    }
                    let mut now = fisec_telemetry::ProfileData::default();
                    for p in &profiled {
                        now.merge(&p.data);
                    }
                    print!(
                        "{}",
                        fisec_core::hotblocks::render_slow_delta(&now, &before)
                    );
                }
            } else {
                // Live: run each selected app's campaign with the
                // profiler on (results are bit-identical either way —
                // the differential tests pin it) and rank its blocks.
                let apps = apps_for(if args.app == "both" {
                    "ftpd"
                } else {
                    &args.app
                })?;
                let scheme = if args.new_encoding {
                    EncodingScheme::NewEncoding
                } else {
                    EncodingScheme::Baseline
                };
                let mut now = fisec_telemetry::ProfileData::default();
                for app in &apps {
                    let mut cfg = cfg_of(args, scheme);
                    cfg.profiler = true;
                    let tel = Telemetry::new(Arc::new(NullSink), args.progress);
                    run_campaign_traced(app, &cfg, &tel);
                    let snap = tel.metrics.snapshot();
                    if args.json {
                        let ev = fisec_telemetry::ProfileEvent {
                            app: app.name.to_string(),
                            mode: cfg.mode.name().to_string(),
                            data: snap.profile().clone(),
                        };
                        println!(
                            "{}",
                            serde_json::to_string_pretty(&ev).map_err(|e| e.to_string())?
                        );
                    } else {
                        println!(
                            "== {} [{}] — {} engine ==",
                            app.name,
                            scheme,
                            cfg.mode.name()
                        );
                        print!(
                            "{}",
                            fisec_core::hotblocks::render_hot_blocks(
                                snap.profile(),
                                Some(&app.image),
                                top
                            )
                        );
                    }
                    now.merge(snap.profile());
                }
                if let Some(base_path) = &args.baseline {
                    let base = trace::read_trace(base_path)?;
                    let mut before = fisec_telemetry::ProfileData::default();
                    for c in &base.campaigns {
                        if let Some(p) = &c.profile {
                            before.merge(&p.data);
                        }
                    }
                    if before.is_empty() {
                        return Err(format!(
                            "{base_path}: no profile events (record the baseline with --profile)"
                        ));
                    }
                    print!(
                        "{}",
                        fisec_core::hotblocks::render_slow_delta(&now, &before)
                    );
                }
            }
        }
        "report" => {
            let path = args
                .path
                .as_ref()
                .ok_or("report needs a trace file: fisec report run.jsonl [--out report.html]")?;
            let replay = trace::read_trace(path)?;
            if replay.campaigns.is_empty() && replay.random.is_empty() {
                return Err(format!("{path}: no campaigns in trace"));
            }
            let html = fisec_core::report::render_html(&replay);
            let out = args.out.clone().unwrap_or_else(|| {
                let stem = path.strip_suffix(".jsonl").unwrap_or(path);
                format!("{stem}.html")
            });
            std::fs::write(&out, &html).map_err(|e| format!("{out}: {e}"))?;
            println!("report: {out} ({} bytes)", html.len());
        }
        "bench-diff" => {
            let path = args.path.as_ref().ok_or(
                "bench-diff needs the baseline file: fisec bench-diff BENCH_campaign.json [--factor F]",
            )?;
            let baseline = fisec_core::benchdiff::read_baseline(path)?;
            eprintln!(
                "bench-diff: measuring one full ftpd baseline campaign, plain, profiled and taint-traced ..."
            );
            let measured = fisec_core::benchdiff::measure();
            let rows = fisec_core::benchdiff::compare(&baseline, &measured, args.factor);
            print!("{}", fisec_core::benchdiff::render(&rows, args.factor));
            if fisec_core::benchdiff::regressed(&rows) {
                let n = rows.iter().filter(|r| !r.ok).count();
                return Err(format!(
                    "{n} metric(s) regressed past their thresholds (baseline {path})"
                ));
            }
        }
        "load" => {
            let apps = apps_for(if args.app == "both" {
                "ftpd"
            } else {
                &args.app
            })?;
            let r = load::run_load_study(&apps[0], args.samples, args.seed);
            if args.json {
                println!(
                    "{}",
                    serde_json::to_string_pretty(&r).map_err(|e| e.to_string())?
                );
            } else {
                println!("{}", load::render(&r));
            }
        }
        "targets" => {
            for app in apps_for(&args.app)? {
                let set = enumerate_targets(&app.image, &app.auth_funcs, false);
                println!(
                    "{}: {} branch instructions ({} conditional), {} injection runs per client, auth = {:.1}% of text",
                    app.name,
                    set.instructions,
                    set.cond_branches,
                    set.runs(),
                    app.image.text_fraction(&app.auth_funcs) * 100.0
                );
            }
        }
        "disasm" => {
            let apps = apps_for(if args.app == "both" {
                "ftpd"
            } else {
                &args.app
            })?;
            let app = &apps[0];
            let funcs: Vec<String> = match &args.func {
                Some(f) => vec![f.clone()],
                None => app.auth_funcs.iter().map(|s| s.to_string()).collect(),
            };
            for name in funcs {
                let f = app
                    .image
                    .func(&name)
                    .ok_or(format!("no function `{name}` in {}", app.name))?
                    .clone();
                println!("{:08x} <{}>:", f.start, f.name);
                let start = (f.start - app.image.text_base) as usize;
                let end = (f.end - app.image.text_base) as usize;
                for line in fisec_x86::disassemble(&app.image.text[start..end], f.start) {
                    println!("{line}");
                }
                println!();
            }
        }
        "breakins" => {
            for app in apps_for(&args.app)? {
                let client = &app.clients[0];
                let golden = golden_run(&app.image, client).map_err(|e| e.to_string())?;
                let set = enumerate_targets(&app.image, &app.auth_funcs, true);
                println!("{} ({}):", app.name, client.name);
                for t in set
                    .targets
                    .iter()
                    .filter(|t| t.byte_index == 0 || (t.first_byte == 0x0F && t.byte_index == 1))
                {
                    let r = run_injection(&app.image, client, &golden, t, EncodingScheme::Baseline)
                        .map_err(|e| e.to_string())?;
                    if r.outcome == OutcomeClass::Breakin {
                        let off = (t.addr - app.image.text_base) as usize;
                        let before = fisec_x86::decode(&app.image.text[off..off + 8]);
                        let mut bytes = app.image.text[off..off + 8].to_vec();
                        bytes[t.byte_index as usize] ^= 1 << t.bit;
                        let after = fisec_x86::decode(&bytes);
                        println!(
                            "  {:08x}: {}  ->  {}  (bit {} of byte {})",
                            t.addr,
                            fisec_x86::fmt_att(&before, t.addr),
                            fisec_x86::fmt_att(&after, t.addr),
                            t.bit,
                            t.byte_index
                        );
                    }
                }
            }
        }
        "ablation" => {
            let cfg = cfg_of(args, EncodingScheme::Baseline);
            println!("== entry points (sshd, Client1) ==");
            let ep = fisec_core::ablation::entry_points_study(&cfg);
            println!("{}", fisec_core::ablation::render_entry_points(&ep));
            println!("== sampling vs exhaustive (ftpd, Client1) ==");
            let mut ftpd = AppSpec::ftpd();
            ftpd.clients.truncate(1);
            let result = run_campaign(&ftpd, &cfg);
            let (truth, rows) = fisec_core::ablation::sampling_study(
                &result,
                0,
                &[50, 200, 500, result.runs_per_client],
                500,
                args.seed,
            );
            println!("{}", fisec_core::ablation::render_sampling(truth, &rows));
        }
        "forensics" => {
            let apps = apps_for(if args.app == "both" {
                "ftpd"
            } else {
                &args.app
            })?;
            let app = &apps[0];
            let client = &app.clients[0];
            let set = enumerate_targets(&app.image, &app.auth_funcs, false);
            // Collect crash reports and show the longest transient
            // windows, sampling every `--stride`th bit for speed
            // (stride 1 = exhaustive).
            let mut reports = Vec::new();
            for t in &set.targets {
                if !(t.bit as usize).is_multiple_of(args.stride) {
                    continue;
                }
                if let Some(r) = crash_forensics(&app.image, client, t, EncodingScheme::Baseline)
                    .map_err(|e| e.to_string())?
                {
                    reports.push((t.addr, r));
                }
            }
            reports.sort_by_key(|(_, r)| std::cmp::Reverse(r.latency));
            let top = args.top.unwrap_or(3);
            println!(
                "{} crashes sampled; {} longest transient windows:",
                reports.len(),
                top
            );
            for (addr, r) in reports.iter().take(top) {
                println!("\ninjected at {addr:#010x}:");
                print!("{r}");
            }
        }
        "cache" => {
            let op = args
                .path
                .as_deref()
                .ok_or("cache needs an operation: fisec cache <ls|verify|gc>")?;
            let root = match &args.cache {
                Some(dir) => std::path::PathBuf::from(dir),
                None => CampaignCache::default_root()
                    .ok_or("no cache root: HOME is unset (use --cache DIR)")?,
            };
            match op {
                "ls" => cache_ls(&root),
                "verify" => cache_verify(&root, args.seed)?,
                "gc" => {
                    if args.max_size.is_none() && args.max_age.is_none() {
                        return Err(
                            "cache gc needs an eviction bound: --max-size and/or --max-age"
                                .to_string(),
                        );
                    }
                    let report = cache::gc(&root, args.max_size, args.max_age);
                    for (file, bytes) in &report.evicted {
                        println!("evicted {file} ({bytes} bytes)");
                    }
                    println!(
                        "{} evicted, {} kept ({} bytes)",
                        report.evicted.len(),
                        report.kept,
                        report.kept_bytes
                    );
                }
                other => {
                    return Err(format!(
                        "unknown cache operation `{other}` (use ls/verify/gc)"
                    ))
                }
            }
        }
        other => return Err(format!("unknown command `{other}`\n{}", usage())),
    }
    Ok(())
}

/// Hard-check `--byte` against the decoded instruction at `--addr`:
/// a byte index past the instruction's encoded length would flip the
/// *next* instruction, so it is an argument error, not a silent
/// enumeration miss. Addresses outside the text section fall through
/// to the target lookup's own diagnostic.
fn check_flip_byte(app: &AppSpec, addr: u32, byte: u8) -> Result<(), String> {
    let Some(off) = addr
        .checked_sub(app.image.text_base)
        .map(|o| o as usize)
        .filter(|&o| o < app.image.text.len())
    else {
        return Ok(());
    };
    let end = (off + 16).min(app.image.text.len());
    let len = fisec_x86::decode(&app.image.text[off..end]).len;
    if byte >= len {
        return Err(format!(
            "--byte {byte} out of range: the instruction at {addr:#010x} is {len} byte(s) \
             long (valid bytes: 0..={})",
            len - 1
        ));
    }
    Ok(())
}

/// `fisec cache ls`: one row per store file.
fn cache_ls(root: &std::path::Path) {
    let rows = cache::ls(root);
    if rows.is_empty() {
        println!("no cache stores under {}", root.display());
        return;
    }
    println!(
        "{:<34} {:>8} {:>7} {:>8}  contents",
        "store", "bytes", "age", "groups"
    );
    let mut total = 0u64;
    for r in &rows {
        total += r.bytes;
        let contents = match &r.store {
            Some(s) => format!(
                "{}/{} [{}]{}  {} memoized runs",
                s.app,
                s.client,
                s.scheme,
                if s.recorder { " +recorder" } else { "" },
                s.groups.iter().map(|g| g.runs.len()).sum::<usize>()
            ),
            None => "invalid or stale-schema (cold miss)".to_string(),
        };
        println!(
            "{:<34} {:>8} {:>6}s {:>8}  {}",
            r.file,
            r.bytes,
            r.age_secs,
            r.store.as_ref().map_or(0, |s| s.groups.len()),
            contents
        );
    }
    println!("{} stores, {total} bytes", rows.len());
}

/// `fisec cache verify`: for every valid store, re-execute one
/// deterministically sampled group and diff the fresh outcomes against
/// the memoized entry. Catches the one documented soundness gap (code
/// bytes read as *data* are not in any footprint) and any store
/// corruption the shape checks cannot see.
///
/// # Errors
/// A drift report (nonzero exit) when any sampled group's re-execution
/// disagrees with its memoized runs.
fn cache_verify(root: &std::path::Path, seed: u64) -> Result<(), String> {
    let mut checked = 0usize;
    let mut drifted: Vec<String> = Vec::new();
    for summary in cache::ls(root) {
        let Some(store) = &summary.store else {
            println!(
                "{}: invalid or stale schema — skipped (cold miss)",
                summary.file
            );
            continue;
        };
        let app = match store.app.as_str() {
            "ftpd" => AppSpec::ftpd(),
            "sshd" => AppSpec::sshd(),
            "sshd-single-entry" => AppSpec::sshd_single_entry(),
            other => {
                println!("{}: unknown app `{other}` — skipped", summary.file);
                continue;
            }
        };
        let Some(spec) = app.clients.iter().find(|c| c.name == store.client) else {
            println!(
                "{}: unknown client `{}` — skipped",
                summary.file, store.client
            );
            continue;
        };
        let scheme = match store.scheme.as_str() {
            "base" => EncodingScheme::Baseline,
            "newenc" => EncodingScheme::NewEncoding,
            other => {
                println!("{}: unknown scheme `{other}` — skipped", summary.file);
                continue;
            }
        };
        let engine = fisec_inject::EngineOpts {
            flight_recorder: store.recorder,
            ..fisec_inject::EngineOpts::default()
        };
        let golden =
            fisec_inject::golden_run_opts(&app.image, spec, engine).map_err(|e| e.to_string())?;
        if cache::context_key(&app, spec, scheme, store.recorder, &golden) != store.context {
            println!(
                "{}: context key differs from the current build — entries will cold-miss",
                summary.file
            );
            continue;
        }
        if store.groups.is_empty() {
            continue;
        }
        let idx = (seed as usize) % store.groups.len();
        let entry = &store.groups[idx];
        let Some(targets) = cache::entry_targets(entry) else {
            drifted.push(format!(
                "{}: group @ {:#010x} has malformed targets",
                summary.file, entry.addr
            ));
            continue;
        };
        let (runs, _, _, _) = fisec_inject::run_injection_group_recorded(
            &app.image, spec, &golden, &targets, scheme, engine,
        )
        .map_err(|e| e.to_string())?;
        checked += 1;
        let mut mismatches = 0usize;
        for ((run, _meta, rep, _prop), cached) in runs.iter().zip(&entry.runs) {
            let div = rep.as_ref().map(|r| {
                (
                    r.divergence_depth,
                    run.crash_latency.map(|_| r.faulty.retired()),
                )
            });
            if fisec_inject::persist::encode_run(run, div) != *cached {
                mismatches += 1;
            }
        }
        if mismatches > 0 || runs.len() != entry.runs.len() {
            drifted.push(format!(
                "{}: group @ {:#010x}: {mismatches} of {} memoized runs drifted",
                summary.file,
                entry.addr,
                entry.runs.len()
            ));
        } else {
            println!(
                "{}: group @ {:#010x} ({} runs) verified",
                summary.file,
                entry.addr,
                entry.runs.len()
            );
        }
    }
    if drifted.is_empty() {
        println!("cache verify: {checked} sampled groups verified, no drift");
        Ok(())
    } else {
        Err(format!(
            "cache verify: drift detected:\n{}",
            drifted.join("\n")
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Result<Args, String> {
        parse_args_from(args.iter().map(|s| s.to_string()))
    }

    #[test]
    fn defaults_round_trip() {
        let a = parse(&["table1"]).unwrap();
        assert_eq!(a.cmd, "table1");
        assert_eq!(a.app, "both");
        assert_eq!(a.client, 1);
        assert_eq!(a.stride, 4);
        assert_eq!(a.threads, None);
        assert!(!a.json && !a.new_encoding && !a.progress);
        assert!(a.trace_out.is_none() && a.path.is_none() && a.func.is_none());
    }

    #[test]
    fn flags_round_trip() {
        let a = parse(&[
            "table1",
            "--app",
            "ftpd",
            "--threads",
            "2",
            "--json",
            "--new-encoding",
            "--trace-out",
            "t.jsonl",
            "--progress",
            "--stride",
            "1",
            "--client",
            "3",
        ])
        .unwrap();
        assert_eq!(a.app, "ftpd");
        assert_eq!(a.threads, Some(2));
        assert!(a.json && a.new_encoding && a.progress);
        assert_eq!(a.trace_out.as_deref(), Some("t.jsonl"));
        assert_eq!(a.stride, 1);
        assert_eq!(a.client, 3);
    }

    #[test]
    fn explain_flags_round_trip() {
        let a = parse(&[
            "explain",
            "--app",
            "ftpd",
            "--addr",
            "0x08048123",
            "--byte",
            "1",
            "--bit",
            "5",
        ])
        .unwrap();
        assert_eq!(a.addr, Some(0x0804_8123));
        assert_eq!(a.byte, 1);
        assert_eq!(a.bit, 5);
        // Decimal addresses parse too; garbage is rejected.
        assert_eq!(parse(&["explain", "--addr", "64"]).unwrap().addr, Some(64));
        assert!(parse(&["explain", "--addr", "0xzz"]).is_err());
        // Without --addr the command itself errors out.
        let e = run(&parse(&["explain", "--app", "ftpd"]).unwrap()).unwrap_err();
        assert!(e.contains("--addr"), "{e}");
    }

    #[test]
    fn propagate_flags_round_trip() {
        let a = parse(&[
            "propagate",
            "--app",
            "sshd",
            "--addr",
            "0x08049100",
            "--byte",
            "2",
            "--bit",
            "6",
        ])
        .unwrap();
        assert_eq!(a.cmd, "propagate");
        assert_eq!(a.addr, Some(0x0804_9100));
        assert_eq!(a.byte, 2);
        assert_eq!(a.bit, 6);
        // Without --addr the command itself errors out, naming itself.
        let e = run(&parse(&["propagate", "--app", "ftpd"]).unwrap()).unwrap_err();
        assert!(e.contains("propagate needs --addr"), "{e}");
    }

    #[test]
    fn bit_out_of_range_is_a_parse_error() {
        // Bits above 7 are rejected at argument parse, not silently
        // wrapped into an enumeration miss.
        let e = parse(&["explain", "--bit", "8"]).unwrap_err();
        assert!(e.contains("0..=7"), "{e}");
        let e = parse(&["propagate", "--bit", "200"]).unwrap_err();
        assert!(e.contains("0..=7"), "{e}");
        // Values past u8 still fail (as a parse error).
        assert!(parse(&["explain", "--bit", "300"]).is_err());
        // The full valid range parses.
        for bit in 0..=7u8 {
            assert_eq!(
                parse(&["explain", "--bit", &bit.to_string()]).unwrap().bit,
                bit
            );
        }
    }

    #[test]
    fn byte_past_instruction_length_is_rejected() {
        // x86 instructions are at most 15 bytes, so --byte 15 is out of
        // range for any real instruction: both explain and propagate
        // must hard-error instead of reporting a missing target.
        let app = AppSpec::ftpd();
        let addr = enumerate_targets(&app.image, &app.auth_funcs, false).targets[0].addr;
        for cmd in ["explain", "propagate"] {
            let a = Args {
                byte: 15,
                addr: Some(addr),
                app: "ftpd".into(),
                ..parse(&[cmd]).unwrap()
            };
            let e = run(&a).unwrap_err();
            assert!(e.contains("--byte 15 out of range"), "{cmd}: {e}");
            assert!(e.contains("byte(s)"), "{cmd}: {e}");
        }
    }

    #[test]
    fn propagation_flag_arms_the_tracer_campaign_wide() {
        let a = parse(&["table1", "--propagation"]).unwrap();
        assert!(a.propagation);
        assert!(cfg_of(&a, EncodingScheme::Baseline).propagation);
        let plain = parse(&["table1"]).unwrap();
        assert!(!cfg_of(&plain, EncodingScheme::Baseline).propagation);
        assert!(usage().contains("--propagation"), "{}", usage());
    }

    #[test]
    fn recorder_flags_enable_the_flight_recorder() {
        let a = parse(&["table1"]).unwrap();
        assert!(!cfg_of(&a, EncodingScheme::Baseline).flight_recorder);
        let a = parse(&["table1", "--recorder"]).unwrap();
        assert!(cfg_of(&a, EncodingScheme::Baseline).flight_recorder);
        // --from-trace implies the recorder: the histogram cannot be
        // rebuilt from traces nobody recorded.
        let a = parse(&["figure4", "--from-trace"]).unwrap();
        assert!(a.from_trace);
        assert!(cfg_of(&a, EncodingScheme::Baseline).flight_recorder);
    }

    #[test]
    fn no_block_cache_flag_disables_engine() {
        let a = parse(&["table1"]).unwrap();
        assert!(!a.no_block_cache);
        assert!(cfg_of(&a, EncodingScheme::Baseline).block_cache);
        let a = parse(&["table1", "--no-block-cache"]).unwrap();
        assert!(a.no_block_cache);
        assert!(!cfg_of(&a, EncodingScheme::Baseline).block_cache);
    }

    #[test]
    fn no_trace_cache_flag_caps_the_engine_at_tier1() {
        let a = parse(&["table1"]).unwrap();
        assert!(!a.no_trace_cache);
        assert!(cfg_of(&a, EncodingScheme::Baseline).trace_cache);
        let a = parse(&["table1", "--no-trace-cache"]).unwrap();
        assert!(a.no_trace_cache);
        assert!(!cfg_of(&a, EncodingScheme::Baseline).trace_cache);
        // Orthogonal to --no-block-cache: capping tier 2 keeps tier 1.
        assert!(cfg_of(&a, EncodingScheme::Baseline).block_cache);
    }

    #[test]
    fn profile_baseline_flag_parses_and_requires_profile_events() {
        let a = parse(&["profile", "run.jsonl", "--baseline", "old.jsonl"]).unwrap();
        assert_eq!(a.path.as_deref(), Some("run.jsonl"));
        assert_eq!(a.baseline.as_deref(), Some("old.jsonl"));
        assert!(usage().contains("--baseline"), "{}", usage());
    }

    #[test]
    fn unknown_flag_is_rejected_with_usage() {
        let e = parse(&["table1", "--martian"]).unwrap_err();
        assert!(e.contains("unknown flag `--martian`"), "{e}");
        assert!(e.contains("usage:"), "{e}");
    }

    #[test]
    fn missing_flag_value_is_rejected() {
        let e = parse(&["table1", "--threads"]).unwrap_err();
        assert!(e.contains("--threads needs a value"), "{e}");
        let e = parse(&["figure4", "--trace-out"]).unwrap_err();
        assert!(e.contains("--trace-out needs a value"), "{e}");
    }

    #[test]
    fn non_numeric_values_are_rejected() {
        assert!(parse(&["table1", "--threads", "many"]).is_err());
        assert!(parse(&["figure4", "--client", "first"]).is_err());
        assert!(parse(&["forensics", "--stride", "-1"]).is_err());
    }

    #[test]
    fn zero_stride_is_rejected() {
        let e = parse(&["forensics", "--stride", "0"]).unwrap_err();
        assert!(e.contains("--stride must be at least 1"), "{e}");
    }

    #[test]
    fn positional_path_lands_in_path() {
        let a = parse(&["stats", "run.jsonl", "--json"]).unwrap();
        assert_eq!(a.path.as_deref(), Some("run.jsonl"));
        assert!(a.json);
        // A second positional is an error, not a silent overwrite.
        assert!(parse(&["stats", "a.jsonl", "b.jsonl"]).is_err());
    }

    #[test]
    fn no_command_shows_usage() {
        let e = parse(&[]).unwrap_err();
        assert!(e.contains("usage:"), "{e}");
    }

    #[test]
    fn figure4_client_range_is_checked() {
        for bad in [0, 99] {
            let a = Args {
                client: bad,
                ..parse(&["figure4", "--app", "ftpd"]).unwrap()
            };
            let e = run(&a).unwrap_err();
            assert!(e.contains("out of range"), "client {bad}: {e}");
            assert!(e.contains("1..="), "client {bad}: {e}");
        }
    }

    #[test]
    fn positional_rejected_outside_stats() {
        let a = parse(&["table1", "run.jsonl"]).unwrap();
        let e = run(&a).unwrap_err();
        assert!(e.contains("unexpected argument"), "{e}");
    }

    #[test]
    fn help_is_a_first_class_command() {
        // `fisec help`, `fisec --help` and `fisec -h` all parse into
        // the help command, which run() serves on stdout with exit 0.
        for argv in [&["help"][..], &["--help"], &["-h"], &["table1", "--help"]] {
            let a = parse(argv).unwrap();
            assert_eq!(a.cmd, "help", "{argv:?}");
            run(&a).unwrap();
        }
        // The usage text names every observatory command and flag.
        let u = usage();
        for needle in [
            "profile",
            "report",
            "bench-diff",
            "--chrome-trace",
            "--factor",
        ] {
            assert!(u.contains(needle), "usage lacks {needle}:\n{u}");
        }
    }

    #[test]
    fn observatory_flags_round_trip() {
        let a = parse(&[
            "table1",
            "--profile",
            "--chrome-trace",
            "spans.json",
            "--out",
            "r.html",
            "--factor",
            "2.5",
            "--top",
            "7",
        ])
        .unwrap();
        assert!(a.profile);
        assert_eq!(a.chrome_trace.as_deref(), Some("spans.json"));
        assert_eq!(a.out.as_deref(), Some("r.html"));
        assert!((a.factor - 2.5).abs() < 1e-9);
        assert_eq!(a.top, Some(7));
        // The campaign config mirrors them: --profile turns the
        // profiler on, --chrome-trace turns span tracing on.
        let cfg = cfg_of(&a, EncodingScheme::Baseline);
        assert!(cfg.profiler && cfg.spans);
        let plain = cfg_of(&parse(&["table1"]).unwrap(), EncodingScheme::Baseline);
        assert!(!plain.profiler && !plain.spans);
    }

    #[test]
    fn factor_must_be_positive() {
        for bad in ["0", "-1", "nope"] {
            assert!(parse(&["bench-diff", "--factor", bad]).is_err(), "{bad}");
        }
    }

    #[test]
    fn report_and_bench_diff_take_a_positional() {
        let a = parse(&["report", "run.jsonl"]).unwrap();
        assert_eq!(a.path.as_deref(), Some("run.jsonl"));
        let a = parse(&["bench-diff", "BENCH_campaign.json"]).unwrap();
        assert_eq!(a.path.as_deref(), Some("BENCH_campaign.json"));
        // Without one, both error out with a pointer to the usage.
        let e = run(&parse(&["report"]).unwrap()).unwrap_err();
        assert!(e.contains("report needs a trace file"), "{e}");
        let e = run(&parse(&["bench-diff"]).unwrap()).unwrap_err();
        assert!(e.contains("bench-diff needs the baseline file"), "{e}");
    }

    #[test]
    fn profile_replay_requires_profile_events() {
        // A trace recorded without --profile is a user error, not an
        // empty table.
        let dir = std::env::temp_dir().join("fisec_profile_cli_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("plain.jsonl");
        let sink = fisec_telemetry::JsonlSink::create(&path).unwrap();
        let tel = Telemetry::new(Arc::new(sink), false);
        let cfg = fisec_core::CampaignConfig {
            cond_branches_only: true,
            ..fisec_core::CampaignConfig::default()
        };
        run_campaign_traced(&AppSpec::ftpd(), &cfg, &tel);
        let a = parse(&["profile", path.to_str().unwrap()]).unwrap();
        let e = run(&a).unwrap_err();
        assert!(e.contains("no profile events"), "{e}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn cache_flags_round_trip() {
        let a = parse(&["table1", "--cache", "/tmp/store"]).unwrap();
        assert_eq!(a.cache.as_deref(), Some("/tmp/store"));
        assert!(!a.no_cache);
        let c = cache_for(&a).expect("--cache DIR must enable the cache");
        assert_eq!(c.root(), std::path::Path::new("/tmp/store"));
        // --no-cache wins even when a directory is named.
        let a = parse(&["table1", "--cache", "/tmp/store", "--no-cache"]).unwrap();
        assert!(a.no_cache);
        assert!(cache_for(&a).is_none());
    }

    #[test]
    fn cache_subcommand_takes_the_op_as_positional() {
        for op in ["ls", "verify", "gc"] {
            let a = parse(&["cache", op]).unwrap();
            assert_eq!(a.cmd, "cache");
            assert_eq!(a.path.as_deref(), Some(op));
        }
        // gc without a bound is a user error, not a full wipe.
        let e =
            run(&parse(&["cache", "gc", "--cache", "/nonexistent-fisec"]).unwrap()).unwrap_err();
        assert!(e.contains("--max-size"), "{e}");
    }

    #[test]
    fn size_and_age_suffixes_parse() {
        assert_eq!(parse_size("4096").unwrap(), 4096);
        assert_eq!(parse_size("64k").unwrap(), 64 << 10);
        assert_eq!(parse_size("2M").unwrap(), 2 << 20);
        assert_eq!(parse_size("1gb").unwrap(), 1 << 30);
        assert!(parse_size("7x").is_err());
        assert_eq!(parse_age("90").unwrap(), 90);
        assert_eq!(parse_age("5m").unwrap(), 300);
        assert_eq!(parse_age("2h").unwrap(), 7200);
        assert_eq!(parse_age("7d").unwrap(), 7 * 86_400);
        assert!(parse_age("1w").is_err());
        let a = parse(&["cache", "gc", "--max-size", "64m", "--max-age", "30d"]).unwrap();
        assert_eq!(a.max_size, Some(64 << 20));
        assert_eq!(a.max_age, Some(30 * 86_400));
    }
}
