//! Flat 32-bit memory with per-region permissions.
//!
//! The process image is a small set of non-overlapping regions (text, data,
//! stack, ...). Any access outside a region, or violating a region's
//! permissions, raises a [`Fault`] — the analogue of `SIGSEGV` that produces
//! the paper's *system detection* (crash) outcomes.

use crate::inst::Fault;
use std::fmt;
use std::sync::atomic::{AtomicU32, Ordering};

/// Region permissions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Perms {
    /// Readable.
    pub read: bool,
    /// Writable.
    pub write: bool,
    /// Executable.
    pub exec: bool,
}

impl Perms {
    /// Read-only.
    pub const R: Perms = Perms {
        read: true,
        write: false,
        exec: false,
    };
    /// Read-write.
    pub const RW: Perms = Perms {
        read: true,
        write: true,
        exec: false,
    };
    /// Read-execute (text segments).
    pub const RX: Perms = Perms {
        read: true,
        write: false,
        exec: true,
    };
    /// Read-write-execute (used by tests only).
    pub const RWX: Perms = Perms {
        read: true,
        write: true,
        exec: true,
    };
}

impl fmt::Display for Perms {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}{}{}",
            if self.read { 'r' } else { '-' },
            if self.write { 'w' } else { '-' },
            if self.exec { 'x' } else { '-' }
        )
    }
}

/// A contiguous mapped region.
#[derive(Debug, Clone)]
pub struct Region {
    name: String,
    start: u32,
    data: Vec<u8>,
    perms: Perms,
}

impl Region {
    /// A zero-filled region of `len` bytes.
    ///
    /// # Panics
    /// Panics if the region would wrap past the end of the address space or
    /// is empty.
    pub fn zeroed(name: &str, start: u32, len: u32, perms: Perms) -> Region {
        Self::with_data(name, start, vec![0; len as usize], perms)
    }

    /// A region initialized with `data`.
    ///
    /// # Panics
    /// Panics if the region would wrap past the end of the address space or
    /// is empty.
    pub fn with_data(name: &str, start: u32, data: Vec<u8>, perms: Perms) -> Region {
        assert!(!data.is_empty(), "region {name} must not be empty");
        assert!(
            (start as u64) + (data.len() as u64) <= (u32::MAX as u64) + 1,
            "region {name} wraps the address space"
        );
        Region {
            name: name.to_string(),
            start,
            data,
            perms,
        }
    }

    /// Region name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// First mapped address.
    pub fn start(&self) -> u32 {
        self.start
    }

    /// One past the last mapped address (may be 2^32, reported as u64).
    pub fn end(&self) -> u64 {
        self.start as u64 + self.data.len() as u64
    }

    /// Length in bytes.
    pub fn len(&self) -> u32 {
        self.data.len() as u32
    }

    /// Always false (regions are non-empty by construction).
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Permissions.
    pub fn perms(&self) -> Perms {
        self.perms
    }

    /// The backing bytes, `start()`-based. Read-only view — all writes
    /// go through [`Memory`] so the executable-write journal stays
    /// sound. The flight recorder's corrupted-state diff compares two
    /// address spaces through this without a per-byte permission check.
    pub fn bytes(&self) -> &[u8] {
        &self.data
    }

    fn contains(&self, addr: u32) -> bool {
        (addr as u64) >= (self.start as u64) && (addr as u64) < self.end()
    }
}

/// The process address space: a sorted set of disjoint regions.
#[derive(Debug, Default)]
pub struct Memory {
    regions: Vec<Region>,
    /// Index of the most recently resolved region — a pure performance
    /// hint exploiting the strong locality of guest accesses (runs of
    /// stack or data traffic hit the same region back to back). Any
    /// stale value is safe: a miss falls through to the binary search.
    /// Relaxed atomic so `&self` lookups can refresh it.
    hint: AtomicU32,
    /// Bumped whenever executable bytes may have changed (injector pokes,
    /// writes into rwx regions); lets the CPU invalidate its decoded-
    /// instruction cache.
    exec_gen: u64,
    /// Journal of the addresses behind each generation bump: entry `k` is
    /// the write that moved `exec_gen` from `k` to `k + 1` (invariant:
    /// `exec_log.len() == exec_gen`). Lets the CPU invalidate exactly the
    /// decoded blocks covering changed bytes instead of dropping its whole
    /// cache, and lets snapshot restore prove lineage (see
    /// [`Memory::exec_log_extends`]).
    exec_log: Vec<u32>,
}

/// Error mapping a region.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MapError {
    /// Name of the region that failed to map.
    pub name: String,
    /// Name of the overlapping existing region.
    pub overlaps: String,
}

impl fmt::Display for MapError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "region {} overlaps existing region {}",
            self.name, self.overlaps
        )
    }
}

impl std::error::Error for MapError {}

impl Clone for Memory {
    fn clone(&self) -> Memory {
        Memory {
            regions: self.regions.clone(),
            hint: AtomicU32::new(self.hint.load(Ordering::Relaxed)),
            exec_gen: self.exec_gen,
            exec_log: self.exec_log.clone(),
        }
    }
}

impl Memory {
    /// An empty address space.
    pub fn new() -> Memory {
        Memory::default()
    }

    /// Map a region.
    ///
    /// # Errors
    /// Returns [`MapError`] if it overlaps an existing region.
    pub fn map(&mut self, region: Region) -> Result<(), MapError> {
        for r in &self.regions {
            let disjoint = region.end() <= r.start as u64 || (region.start as u64) >= r.end();
            if !disjoint {
                return Err(MapError {
                    name: region.name.clone(),
                    overlaps: r.name.clone(),
                });
            }
        }
        self.regions.push(region);
        self.regions.sort_by_key(|r| r.start);
        Ok(())
    }

    /// Iterate over mapped regions in address order.
    pub fn regions(&self) -> impl Iterator<Item = &Region> {
        self.regions.iter()
    }

    /// Index of the region containing `addr`, if any. Checks the
    /// last-hit hint before falling back to binary search; guest
    /// accesses are heavily clustered (stack, then a data run, ...), so
    /// the hint hits far more often than not.
    #[inline]
    fn region_index(&self, addr: u32) -> Option<usize> {
        let h = self.hint.load(Ordering::Relaxed) as usize;
        if let Some(r) = self.regions.get(h) {
            if r.contains(addr) {
                return Some(h);
            }
        }
        let idx = match self.regions.binary_search_by_key(&addr, |r| r.start) {
            Ok(i) => i,
            Err(0) => return None,
            Err(i) => i - 1,
        };
        if self.regions[idx].contains(addr) {
            self.hint.store(idx as u32, Ordering::Relaxed);
            Some(idx)
        } else {
            None
        }
    }

    /// The region containing `addr`, if any.
    #[inline]
    pub fn region_at(&self, addr: u32) -> Option<&Region> {
        self.region_index(addr).map(|i| &self.regions[i])
    }

    #[inline]
    fn region_at_mut(&mut self, addr: u32) -> Option<&mut Region> {
        self.region_index(addr).map(|i| &mut self.regions[i])
    }

    /// Read one byte for data access.
    ///
    /// # Errors
    /// [`Fault::MemAccess`] if unmapped or not readable.
    pub fn read8(&self, addr: u32) -> Result<u8, Fault> {
        let r = self
            .region_at(addr)
            .filter(|r| r.perms.read)
            .ok_or(Fault::MemAccess { addr, write: false })?;
        Ok(r.data[(addr - r.start) as usize])
    }

    /// Read a little-endian 16-bit value.
    ///
    /// # Errors
    /// [`Fault::MemAccess`] if any byte is unmapped or not readable.
    pub fn read16(&self, addr: u32) -> Result<u16, Fault> {
        // Fast path: both bytes in one readable region (one region lookup
        // instead of two).
        if let Some(b) = self.read_slice(addr, 2) {
            return Ok(u16::from_le_bytes([b[0], b[1]]));
        }
        let lo = self.read8(addr)? as u16;
        let hi = self.read8(addr.wrapping_add(1))? as u16;
        Ok(lo | (hi << 8))
    }

    /// Read a little-endian 32-bit value.
    ///
    /// # Errors
    /// [`Fault::MemAccess`] if any byte is unmapped or not readable.
    pub fn read32(&self, addr: u32) -> Result<u32, Fault> {
        // Fast path: all four bytes in one readable region (one region
        // lookup instead of four).
        if let Some(b) = self.read_slice(addr, 4) {
            return Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]));
        }
        let mut v = 0u32;
        for i in 0..4 {
            v |= (self.read8(addr.wrapping_add(i))? as u32) << (8 * i);
        }
        Ok(v)
    }

    /// `len` readable bytes starting at `addr` when they all fall inside a
    /// single readable region; `None` sends the caller to the byte-wise
    /// path (which also produces the precise fault).
    #[inline]
    fn read_slice(&self, addr: u32, len: usize) -> Option<&[u8]> {
        let r = self.region_at(addr).filter(|r| r.perms.read)?;
        let off = (addr - r.start) as usize;
        r.data.get(off..off + len)
    }

    /// Current generation of executable bytes (see [`Memory::poke8`]).
    /// Inlined: the block and trace executors re-check it on every
    /// dispatch and after every potentially writing µop.
    #[inline]
    pub fn exec_gen(&self) -> u64 {
        self.exec_gen
    }

    /// Addresses written by every generation bump after `gen` (oldest
    /// first). `exec_writes_since(exec_gen())` is empty; passing a `gen`
    /// from the future is clamped to empty.
    #[inline]
    pub fn exec_writes_since(&self, gen: u64) -> &[u32] {
        let from = (gen.min(self.exec_log.len() as u64)) as usize;
        &self.exec_log[from..]
    }

    /// True when `earlier`'s write journal is a prefix of this memory's —
    /// i.e. `earlier` is an ancestor state of the same execution, and the
    /// bytes that differ between the two are exactly
    /// `self.exec_writes_since(earlier.exec_gen())`.
    pub fn exec_log_extends(&self, earlier: &Memory) -> bool {
        self.exec_log.len() >= earlier.exec_log.len()
            && self.exec_log[..earlier.exec_log.len()] == earlier.exec_log[..]
    }

    /// Record one generation bump caused by a write to `addr`.
    #[inline]
    fn note_exec_write(&mut self, addr: u32) {
        self.exec_gen += 1;
        self.exec_log.push(addr);
    }

    /// Write one byte.
    ///
    /// # Errors
    /// [`Fault::MemAccess`] if unmapped or not writable.
    pub fn write8(&mut self, addr: u32, val: u8) -> Result<(), Fault> {
        let r = self
            .region_at_mut(addr)
            .filter(|r| r.perms.write)
            .ok_or(Fault::MemAccess { addr, write: true })?;
        let exec = r.perms.exec;
        let off = (addr - r.start) as usize;
        r.data[off] = val;
        if exec {
            self.note_exec_write(addr);
        }
        Ok(())
    }

    /// Write a little-endian 16-bit value.
    ///
    /// # Errors
    /// [`Fault::MemAccess`] if any byte is unmapped or not writable.
    pub fn write16(&mut self, addr: u32, val: u16) -> Result<(), Fault> {
        if self.write_slice(addr, &val.to_le_bytes()) {
            return Ok(());
        }
        self.write8(addr, val as u8)?;
        self.write8(addr.wrapping_add(1), (val >> 8) as u8)
    }

    /// Write a little-endian 32-bit value.
    ///
    /// # Errors
    /// [`Fault::MemAccess`] if any byte is unmapped or not writable.
    pub fn write32(&mut self, addr: u32, val: u32) -> Result<(), Fault> {
        if self.write_slice(addr, &val.to_le_bytes()) {
            return Ok(());
        }
        for i in 0..4 {
            self.write8(addr.wrapping_add(i), (val >> (8 * i)) as u8)?;
        }
        Ok(())
    }

    /// Store `bytes` when they all fall inside a single writable region
    /// (one region lookup instead of one per byte). Returns false — having
    /// written nothing — when they don't, sending the caller to the
    /// byte-wise path for the partial-write-then-fault semantics.
    #[inline]
    fn write_slice(&mut self, addr: u32, bytes: &[u8]) -> bool {
        let Some(i) = self.region_index(addr) else {
            return false;
        };
        let r = &mut self.regions[i];
        if !r.perms.write {
            return false;
        }
        let off = (addr - r.start) as usize;
        let Some(dst) = r.data.get_mut(off..off + bytes.len()) else {
            return false;
        };
        dst.copy_from_slice(bytes);
        if r.perms.exec {
            // Same per-byte generation accounting as the byte-wise path.
            for k in 0..bytes.len() as u32 {
                self.note_exec_write(addr.wrapping_add(k));
            }
        }
        true
    }

    /// Fetch up to 15 instruction bytes starting at `addr` from executable
    /// memory. Returns the bytes actually available (stops at a region
    /// boundary unless the next region is also executable and contiguous).
    ///
    /// # Errors
    /// [`Fault::FetchFault`] if `addr` itself is unmapped or not executable.
    pub fn fetch_window(&self, addr: u32) -> Result<([u8; 15], usize), Fault> {
        let mut buf = [0u8; 15];
        let first = self
            .region_at(addr)
            .filter(|r| r.perms.exec)
            .ok_or(Fault::FetchFault(addr))?;
        let mut n = 0usize;
        let mut r = first;
        let mut a = addr;
        while n < 15 {
            if !r.contains(a) {
                match self.region_at(a).filter(|r| r.perms.exec) {
                    Some(next) => r = next,
                    None => break,
                }
            }
            buf[n] = r.data[(a - r.start) as usize];
            n += 1;
            a = a.wrapping_add(1);
            if a == 0 {
                break; // wrapped the address space
            }
        }
        Ok((buf, n))
    }

    /// Bulk-read `len` bytes (for the OS and the injector; same permission
    /// rules as [`Memory::read8`]).
    ///
    /// # Errors
    /// [`Fault::MemAccess`] on the first inaccessible byte.
    pub fn read_bytes(&self, addr: u32, len: u32) -> Result<Vec<u8>, Fault> {
        if let Some(b) = self.read_slice(addr, len as usize) {
            return Ok(b.to_vec());
        }
        let mut v = Vec::with_capacity(len as usize);
        for i in 0..len {
            v.push(self.read8(addr.wrapping_add(i))?);
        }
        Ok(v)
    }

    /// Read a NUL-terminated string of at most `max` bytes.
    ///
    /// # Errors
    /// [`Fault::MemAccess`] if the string runs into inaccessible memory
    /// before a NUL or `max` is reached.
    pub fn read_cstr(&self, addr: u32, max: u32) -> Result<Vec<u8>, Fault> {
        let mut v = Vec::new();
        for i in 0..max {
            let b = self.read8(addr.wrapping_add(i))?;
            if b == 0 {
                break;
            }
            v.push(b);
        }
        Ok(v)
    }

    /// Bulk-write bytes (same permission rules as [`Memory::write8`]).
    ///
    /// # Errors
    /// [`Fault::MemAccess`] on the first inaccessible byte; earlier bytes
    /// will already have been written.
    pub fn write_bytes(&mut self, addr: u32, bytes: &[u8]) -> Result<(), Fault> {
        for (i, b) in bytes.iter().enumerate() {
            self.write8(addr.wrapping_add(i as u32), *b)?;
        }
        Ok(())
    }

    /// Write one byte *ignoring write permissions* (still requires the byte
    /// to be mapped). This is the injector's interface for corrupting the
    /// text segment — the analogue of a debugger poking a read-only page.
    ///
    /// # Errors
    /// [`Fault::MemAccess`] if unmapped.
    pub fn poke8(&mut self, addr: u32, val: u8) -> Result<(), Fault> {
        let r = self
            .region_at_mut(addr)
            .ok_or(Fault::MemAccess { addr, write: true })?;
        let off = (addr - r.start) as usize;
        r.data[off] = val;
        self.note_exec_write(addr);
        Ok(())
    }

    /// Read one byte ignoring read permissions (injector/debugger view).
    ///
    /// # Errors
    /// [`Fault::MemAccess`] if unmapped.
    pub fn peek8(&self, addr: u32) -> Result<u8, Fault> {
        let r = self
            .region_at(addr)
            .ok_or(Fault::MemAccess { addr, write: false })?;
        Ok(r.data[(addr - r.start) as usize])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_region_mem() -> Memory {
        let mut m = Memory::new();
        m.map(Region::with_data("text", 0x1000, vec![0x90; 16], Perms::RX))
            .unwrap();
        m.map(Region::zeroed("data", 0x2000, 32, Perms::RW))
            .unwrap();
        m
    }

    #[test]
    fn map_rejects_overlap() {
        let mut m = two_region_mem();
        let err = m
            .map(Region::zeroed("bad", 0x1008, 16, Perms::RW))
            .unwrap_err();
        assert_eq!(err.overlaps, "text");
        // Adjacent is fine.
        m.map(Region::zeroed("ok", 0x1010, 16, Perms::RW)).unwrap();
    }

    #[test]
    fn read_write_round_trip() {
        let mut m = two_region_mem();
        m.write32(0x2000, 0xDEAD_BEEF).unwrap();
        assert_eq!(m.read32(0x2000).unwrap(), 0xDEAD_BEEF);
        assert_eq!(m.read8(0x2000).unwrap(), 0xEF);
        assert_eq!(m.read16(0x2002).unwrap(), 0xDEAD);
    }

    #[test]
    fn write_to_text_faults() {
        let mut m = two_region_mem();
        assert_eq!(
            m.write8(0x1000, 0).unwrap_err(),
            Fault::MemAccess {
                addr: 0x1000,
                write: true
            }
        );
        // But the injector's poke works.
        m.poke8(0x1000, 0xCC).unwrap();
        assert_eq!(m.peek8(0x1000).unwrap(), 0xCC);
    }

    #[test]
    fn unmapped_access_faults() {
        let m = two_region_mem();
        assert!(m.read8(0x0).is_err());
        assert!(m.read8(0x1FFF).is_err());
        assert!(m.read32(0x200E).is_ok());
        assert!(m.read32(0x201D).is_err()); // crosses the end
    }

    #[test]
    fn fetch_requires_exec() {
        let m = two_region_mem();
        let (_, n) = m.fetch_window(0x1000).unwrap();
        assert_eq!(n, 15);
        let (_, n) = m.fetch_window(0x100E).unwrap();
        assert_eq!(n, 2); // only 2 bytes left in text
        assert_eq!(
            m.fetch_window(0x2000).unwrap_err(),
            Fault::FetchFault(0x2000)
        );
        assert_eq!(
            m.fetch_window(0x5000).unwrap_err(),
            Fault::FetchFault(0x5000)
        );
    }

    #[test]
    fn fetch_crosses_contiguous_exec_regions() {
        let mut m = Memory::new();
        m.map(Region::with_data("a", 0x1000, vec![1; 16], Perms::RX))
            .unwrap();
        m.map(Region::with_data("b", 0x1010, vec![2; 16], Perms::RX))
            .unwrap();
        let (buf, n) = m.fetch_window(0x100C).unwrap();
        assert_eq!(n, 15);
        assert_eq!(&buf[..4], &[1, 1, 1, 1]);
        assert_eq!(buf[4], 2);
    }

    #[test]
    fn cstr_reading() {
        let mut m = two_region_mem();
        m.write_bytes(0x2000, b"hello\0world").unwrap();
        assert_eq!(m.read_cstr(0x2000, 64).unwrap(), b"hello");
        assert_eq!(m.read_cstr(0x2006, 3).unwrap(), b"wor"); // max reached
    }

    #[test]
    fn region_accessors() {
        let m = two_region_mem();
        let r = m.region_at(0x1005).unwrap();
        assert_eq!(r.name(), "text");
        assert_eq!(r.start(), 0x1000);
        assert_eq!(r.len(), 16);
        assert_eq!(r.end(), 0x1010);
        assert!(!r.is_empty());
        assert_eq!(format!("{}", r.perms()), "r-x");
        assert!(m.region_at(0x0FFF).is_none());
    }

    #[test]
    fn high_memory_region_end_does_not_overflow() {
        let mut m = Memory::new();
        m.map(Region::zeroed("top", 0xFFFF_FFF0, 16, Perms::RW))
            .unwrap();
        assert_eq!(m.region_at(0xFFFF_FFFF).unwrap().name(), "top");
        assert!(m.read8(0xFFFF_FFFF).is_ok());
    }

    #[test]
    #[should_panic(expected = "wraps the address space")]
    fn wrapping_region_panics() {
        Region::zeroed("bad", 0xFFFF_FFF0, 17, Perms::RW);
    }

    #[test]
    fn exec_journal_tracks_every_generation_bump() {
        let mut m = two_region_mem();
        assert_eq!(m.exec_gen(), 0);
        assert!(m.exec_writes_since(0).is_empty());
        m.poke8(0x1003, 0xCC).unwrap(); // text poke: logged
        m.write8(0x2000, 1).unwrap(); // plain data write: no bump
        m.poke8(0x2001, 2).unwrap(); // poke always bumps, even non-exec
        assert_eq!(m.exec_gen(), 2);
        assert_eq!(m.exec_writes_since(0), &[0x1003, 0x2001]);
        assert_eq!(m.exec_writes_since(1), &[0x2001]);
        assert!(m.exec_writes_since(2).is_empty());
        assert!(m.exec_writes_since(99).is_empty());
    }

    #[test]
    fn exec_journal_logs_rwx_multibyte_writes_per_byte() {
        let mut m = Memory::new();
        m.map(Region::zeroed("rwx", 0x1000, 16, Perms::RWX))
            .unwrap();
        m.write32(0x1004, 0xAABB_CCDD).unwrap();
        assert_eq!(m.exec_gen(), 4);
        assert_eq!(m.exec_writes_since(0), &[0x1004, 0x1005, 0x1006, 0x1007]);
        m.write16(0x100E, 0x1234).unwrap();
        assert_eq!(m.exec_gen(), 6);
        assert_eq!(m.exec_writes_since(4), &[0x100E, 0x100F]);
    }

    #[test]
    fn exec_log_extends_detects_lineage() {
        let mut m = two_region_mem();
        m.poke8(0x1000, 1).unwrap();
        let snap = m.clone();
        assert!(m.exec_log_extends(&snap));
        assert!(snap.exec_log_extends(&m)); // equal states extend each other
        m.poke8(0x1001, 2).unwrap();
        assert!(m.exec_log_extends(&snap));
        assert!(!snap.exec_log_extends(&m));
        // A divergent history (same gen, different address) is not a prefix.
        let mut other = snap.clone();
        other.poke8(0x1002, 3).unwrap();
        assert!(!other.exec_log_extends(&m));
        assert!(!m.exec_log_extends(&other));
    }

    #[test]
    fn multibyte_fastpaths_match_bytewise_semantics() {
        let mut m = two_region_mem();
        // Straddling the end of a region still faults without a partial
        // read, and partial writes still land before the fault.
        assert!(m.read16(0x201F).is_err());
        assert!(m.write32(0x201E, 0xFFFF_FFFF).is_err());
        assert_eq!(m.read8(0x201F).unwrap(), 0xFF); // partial write landed
                                                    // Reads spanning adjacent regions take the byte-wise path.
        m.map(Region::zeroed("more", 0x2020, 4, Perms::RW)).unwrap();
        m.write8(0x2021, 0xAB).unwrap();
        assert_eq!(m.read32(0x201E).unwrap(), 0xAB00_FFFF);
    }
}
